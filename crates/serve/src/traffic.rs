//! Deterministic traffic generation: replaying attack timelines over a
//! simulated network.
//!
//! A [`TrafficModel`] models the serving workload: every round, each
//! sensor in the population hears its neighbourhood through radio loss
//! (each true neighbour is heard with the hear probability), re-runs
//! localization on what it heard, and reports the resulting
//! `(observation, estimate)` pair — the paper's one-shot pipeline applied
//! round after round, which is what makes the per-round clean score
//! streams (approximately) independent draws from the substrate's clean
//! distribution rather than a frozen per-node constant. An
//! [`AttackTimeline`] then turns part of the population hostile: from
//! attack onset, compromised nodes submit the paper's §7.1 attack (forged
//! location at distance `D`, greedily tainted observation) instead of
//! their honest report.
//!
//! Everything derives from one master seed via `lad_stats::seeds`, so a
//! traffic trace is a pure function of `(network, model, round)` — the
//! serving runtime's determinism tests and the temporal evaluation both
//! rely on this.

use lad_attack::{displaced_location, taint_observation, AttackConfig};
use lad_core::engine::{DetectionRequest, LadEngine};
use lad_core::MetricKind;
use lad_geometry::Point2;
use lad_net::{Network, NodeId, Observation, ObservationBatch};
use lad_stats::seeds::derive_seed;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Seed-path tags, distinct from the evaluation harness's so traffic
/// streams never collide with Monte-Carlo trial streams.
const TAG_ROUND: u64 = 0x7_AFF1C;
const TAG_COMPROMISE: u64 = 0xC0_413D;
const TAG_FORGE: u64 = 0xF0_46ED;

/// When (and how broadly) the adversary is active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackTimeline {
    /// No attack, ever: pure clean traffic (warm-up / calibration runs).
    Clean,
    /// The full compromised set attacks every round from `at` onwards.
    Onset {
        /// First attacked round.
        at: u64,
    },
    /// From `at` onwards the compromised set attacks in bursts: `active`
    /// rounds out of every `period` (an adversary evading detection by
    /// going quiet).
    Intermittent {
        /// First attacked round.
        at: u64,
        /// Cycle length in rounds.
        period: u64,
        /// Attacked rounds at the start of each cycle (`1..=period`).
        active: u64,
    },
    /// The compromised set grows linearly from empty at `at` to the full
    /// set at `full_at` (a spreading compromise).
    Ramp {
        /// First attacked round.
        at: u64,
        /// Round at which the whole compromised set is active.
        full_at: u64,
    },
}

impl AttackTimeline {
    /// The first round at which any node attacks, or `None` for
    /// [`AttackTimeline::Clean`].
    pub fn onset(&self) -> Option<u64> {
        match *self {
            AttackTimeline::Clean => None,
            AttackTimeline::Onset { at }
            | AttackTimeline::Intermittent { at, .. }
            | AttackTimeline::Ramp { at, .. } => Some(at),
        }
    }

    /// How many of the `compromised` nodes (ordered by compromise rank) are
    /// actively attacking in `round`.
    fn active_count(&self, compromised: usize, round: u64) -> usize {
        match *self {
            AttackTimeline::Clean => 0,
            AttackTimeline::Onset { at } => {
                if round >= at {
                    compromised
                } else {
                    0
                }
            }
            AttackTimeline::Intermittent { at, period, active } => {
                if round >= at && (round - at) % period.max(1) < active {
                    compromised
                } else {
                    0
                }
            }
            AttackTimeline::Ramp { at, full_at } => {
                if round < at {
                    0
                } else if round >= full_at {
                    compromised
                } else {
                    let span = (full_at - at) as f64;
                    let progress = (round - at + 1) as f64 / (span + 1.0);
                    (compromised as f64 * progress).ceil() as usize
                }
            }
        }
    }
}

/// One reporting sensor: its true (clean) observation, from which each
/// round's heard observation is derived, plus a fallback estimate for the
/// rare round whose thinned observation cannot be localized.
#[derive(Debug, Clone)]
struct Reporter {
    node: NodeId,
    fallback_estimate: Point2,
    clean_observation: Observation,
    /// Position in the seeded compromise shuffle: rank < k ⇒ among the
    /// first k nodes to turn hostile.
    compromise_rank: usize,
}

/// A deterministic load generator over one simulated network. See the
/// [module docs](self) for the model.
#[derive(Clone)]
pub struct TrafficModel {
    reporters: Vec<Reporter>,
    localizer: std::sync::Arc<dyn lad_localization::LocalizationScheme>,
    knowledge: std::sync::Arc<lad_deployment::DeploymentKnowledge>,
    timeline: AttackTimeline,
    attack: Option<AttackConfig>,
    /// Number of reporters in the compromised set (the timeline activates
    /// them gradually or all at once).
    compromised: usize,
    hear_prob: f64,
    seed: u64,
}

impl std::fmt::Debug for TrafficModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrafficModel")
            .field("reporters", &self.reporters.len())
            .field("timeline", &self.timeline)
            .field("attack", &self.attack)
            .field("compromised", &self.compromised)
            .field("hear_prob", &self.hear_prob)
            .field("seed", &self.seed)
            .finish()
    }
}

impl TrafficModel {
    /// Builds a clean traffic model over `nodes`: every round each node
    /// re-localizes with the engine's scheme (against the engine's
    /// *assumed* deployment knowledge — exactly what a deployed sensor
    /// holds) from that round's heard observation. Nodes whose full
    /// observation the scheme cannot localize are dropped at construction.
    ///
    /// # Panics
    /// Panics when `nodes` contains a duplicate id: the serving runtime
    /// keys detector state by node, so a duplicated reporter would fold
    /// two report streams into one node's state — silently diverging from
    /// any per-stream offline replay (and a duplicate could end up both
    /// clean and compromised at once).
    pub fn clean(network: &Network, engine: &LadEngine, nodes: Vec<NodeId>, seed: u64) -> Self {
        let mut unique: Vec<u32> = nodes.iter().map(|n| n.0).collect();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            unique.len(),
            nodes.len(),
            "traffic population contains duplicate node ids"
        );
        let knowledge = engine.knowledge();
        let mut reporters: Vec<Reporter> = nodes
            .into_iter()
            .filter_map(|node| {
                let clean_observation = network.true_observation(node);
                let fallback_estimate =
                    engine.localizer().estimate(knowledge, &clean_observation)?;
                Some(Reporter {
                    node,
                    fallback_estimate,
                    clean_observation,
                    compromise_rank: 0,
                })
            })
            .collect();

        // Seeded shuffle rank assignment: rank r means "the (r+1)-th node
        // to turn hostile", fixed for the model's lifetime so ramps grow
        // monotonically.
        let n = reporters.len();
        let order = lad_stats::seeds::seeded_partial_shuffle(
            n,
            n.saturating_sub(1),
            derive_seed(seed, &[TAG_COMPROMISE]),
        );
        for (rank, &idx) in order.iter().enumerate() {
            reporters[idx as usize].compromise_rank = rank;
        }

        Self {
            reporters,
            localizer: engine.localizer().clone(),
            knowledge: knowledge.clone(),
            timeline: AttackTimeline::Clean,
            attack: None,
            compromised: 0,
            hear_prob: DEFAULT_HEAR_PROB,
            seed,
        }
    }

    /// Returns a copy with a different per-round hear probability (the
    /// chance each true neighbour is heard in a given round). 1.0 disables
    /// radio loss entirely — every clean report is then identical.
    pub fn with_hear_prob(mut self, hear_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&hear_prob),
            "hear probability must be in [0, 1], got {hear_prob}"
        );
        self.hear_prob = hear_prob;
        self
    }

    /// Returns a copy in which a `node_fraction` of the population turns
    /// hostile according to `timeline`. Each active attacker claims one
    /// consistent forged location (the §7.1 D-anomaly, drawn once per
    /// node) and re-runs the `attack`'s greedy taint against every
    /// attacked round's heard neighbourhood.
    ///
    /// # Panics
    /// Panics when `node_fraction ∉ [0, 1]`, when an
    /// [`AttackTimeline::Intermittent`] has `period = 0` or
    /// `active ∉ 1..=period`, or when an [`AttackTimeline::Ramp`] has
    /// `full_at < at` — each of those would silently describe a different
    /// attack than the caller believes (e.g. `active = 0` never attacks
    /// while `onset()` still reports an onset round).
    pub fn with_attack(
        &self,
        timeline: AttackTimeline,
        attack: AttackConfig,
        node_fraction: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&node_fraction),
            "compromised node fraction must be in [0, 1], got {node_fraction}"
        );
        match timeline {
            AttackTimeline::Intermittent { period, active, .. } => {
                assert!(period >= 1, "intermittent timeline needs period >= 1");
                assert!(
                    (1..=period).contains(&active),
                    "intermittent timeline needs active in 1..=period, got {active} of {period}"
                );
            }
            AttackTimeline::Ramp { at, full_at } => {
                assert!(
                    full_at >= at,
                    "ramp timeline needs full_at >= at, got {full_at} < {at}"
                );
            }
            AttackTimeline::Clean | AttackTimeline::Onset { .. } => {}
        }
        let mut model = self.clone();
        model.timeline = timeline;
        model.attack = Some(attack);
        model.compromised = (node_fraction * self.reporters.len() as f64).ceil() as usize;
        model
    }

    /// The reporting population (after localization drops), in submission
    /// order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.reporters.iter().map(|r| r.node).collect()
    }

    /// The number of reporters in the (eventually) compromised set.
    pub fn compromised_count(&self) -> usize {
        self.compromised
    }

    /// The timeline's first attacked round, or `None` for clean traffic.
    pub fn onset(&self) -> Option<u64> {
        match self.attack {
            Some(_) => self.timeline.onset(),
            None => None,
        }
    }

    /// One flag per reporter, in population order ([`Self::nodes`]):
    /// whether it submits an attacked report in `round`. One O(population)
    /// pass — prefer this over calling [`Self::is_attacked`] per node.
    pub fn attacked_mask(&self, round: u64) -> Vec<bool> {
        let active = self.timeline.active_count(self.compromised, round);
        self.reporters
            .iter()
            .map(|r| r.compromise_rank < active)
            .collect()
    }

    /// Whether `node` submits an attacked report in `round`.
    pub fn is_attacked(&self, node: NodeId, round: u64) -> bool {
        let active = self.timeline.active_count(self.compromised, round);
        self.reporters
            .iter()
            .any(|r| r.node == node && r.compromise_rank < active)
    }

    /// Calls `report(node, observation, estimate)` for every reporter's
    /// report of `round`, in population order, reusing one thinning scratch
    /// observation (and one µ scratch for attacked reports) across the
    /// whole round — the allocation-free core both [`Self::round`] and
    /// [`Self::round_rows`] drive.
    fn for_each_report<F: FnMut(NodeId, &Observation, Point2)>(
        &self,
        network: &Network,
        round: u64,
        mut report: F,
    ) {
        let active = self.timeline.active_count(self.compromised, round);
        let mut heard = Observation::zeros(self.knowledge.group_count());
        let mut mu_scratch: Vec<f64> = Vec::new();
        for reporter in &self.reporters {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(
                self.seed,
                &[TAG_ROUND, round, reporter.node.0 as u64],
            ));
            if reporter.compromise_rank < active {
                // §7.1 attack, served: the adversary commits to ONE forged
                // location per victim (a consistent lie, drawn once from a
                // per-node seed) and re-runs the greedy taint against every
                // attacked round's heard neighbourhood.
                let attack = self.attack.expect("active attacker implies attack config");
                let knowledge = network.knowledge();
                let mut forge_rng = ChaCha8Rng::seed_from_u64(derive_seed(
                    self.seed,
                    &[TAG_FORGE, reporter.node.0 as u64],
                ));
                let forged = displaced_location(
                    &mut forge_rng,
                    network.node(reporter.node).resident_point,
                    attack.degree_of_damage,
                    knowledge.config().area(),
                );
                self.thin_into(&reporter.clean_observation, &mut rng, &mut heard);
                let budget = (attack.compromised_fraction * heard.total() as f64).round() as usize;
                knowledge.expected_observation_into(forged, &mut mu_scratch);
                let tainted = taint_observation(
                    attack.class,
                    attack.targeted_metric,
                    &heard,
                    &mu_scratch,
                    budget,
                    knowledge.group_size(),
                );
                report(reporter.node, &tainted, forged);
            } else {
                // Honest report: hear the neighbourhood through radio
                // loss, re-localize from what was heard.
                self.thin_into(&reporter.clean_observation, &mut rng, &mut heard);
                let estimate = self
                    .localizer
                    .estimate(&self.knowledge, &heard)
                    .unwrap_or(reporter.fallback_estimate);
                report(reporter.node, &heard, estimate);
            }
        }
    }

    /// Generates one round of reports, in population order. `network` must
    /// be the network the model was built from (attacked reports re-run the
    /// §7.1 simulation against it).
    ///
    /// Allocates one `DetectionRequest` (with its dense observation) per
    /// report; the serving path uses [`Self::round_rows`], which emits a
    /// flat [`ObservationBatch`] instead.
    pub fn round(&self, network: &Network, round: u64) -> Vec<(NodeId, DetectionRequest)> {
        let mut out = Vec::with_capacity(self.reporters.len());
        self.for_each_report(network, round, |node, observation, estimate| {
            out.push((node, DetectionRequest::new(observation.clone(), estimate)));
        });
        out
    }

    /// Generates one round of reports into reusable flat buffers: the
    /// reporting nodes (population order) and their `(sparse observation,
    /// estimate)` rows. After warm-up the honest-traffic path performs no
    /// per-report allocation — this is what the serving loop submits via
    /// [`ServeRuntime::submit_rows`](crate::ServeRuntime::submit_rows).
    pub fn round_rows(
        &self,
        network: &Network,
        round: u64,
        nodes: &mut Vec<NodeId>,
        rows: &mut ObservationBatch,
    ) {
        nodes.clear();
        rows.reset(self.knowledge.group_count());
        self.for_each_report(network, round, |node, observation, estimate| {
            nodes.push(node);
            rows.push(observation, estimate);
        });
    }

    /// Radio loss: each observed neighbour survives the round independently
    /// with the hear probability. Writes the heard counts into `out`.
    fn thin_into(&self, observation: &Observation, rng: &mut ChaCha8Rng, out: &mut Observation) {
        if self.hear_prob >= 1.0 {
            out.clone_from(observation);
            return;
        }
        for (slot, &c) in out.counts_mut().iter_mut().zip(observation.counts()) {
            *slot = (0..c)
                .filter(|_| rng.gen_range(0.0..1.0) < self.hear_prob)
                .count() as u32;
        }
    }

    /// Convenience for calibration and offline evaluation: generates rounds
    /// `rounds`, scores every report with `engine`, and returns one
    /// per-node score stream (for `metric`) per reporter, in population
    /// order — ready for `SequentialDetector::calibrate_*`.
    ///
    /// # Panics
    /// Panics when the engine does not score `metric`.
    pub fn score_streams(
        &self,
        network: &Network,
        engine: &LadEngine,
        metric: MetricKind,
        rounds: Range<u64>,
    ) -> Vec<Vec<f64>> {
        let column = engine
            .metric_index(metric)
            .expect("engine scores the requested metric");
        let width = engine.metrics().len();
        let mut streams = vec![Vec::with_capacity(rounds.clone().count()); self.reporters.len()];
        let mut scores = Vec::new();
        let mut nodes = Vec::new();
        let mut rows = ObservationBatch::new(self.knowledge.group_count());
        for round in rounds {
            self.round_rows(network, round, &mut nodes, &mut rows);
            engine.score_rows_into(&rows, &mut scores);
            for (stream, row) in streams.iter_mut().zip(scores.chunks_exact(width)) {
                stream.push(row[column]);
            }
        }
        streams
    }
}

/// Default per-round hear probability: light radio loss, enough to make
/// clean score streams fluctuate round to round.
pub const DEFAULT_HEAR_PROB: f64 = 0.9;

#[cfg(test)]
mod tests {
    use super::*;
    use lad_attack::AttackClass;
    use lad_deployment::DeploymentConfig;
    use std::sync::Arc;

    fn engine() -> Arc<LadEngine> {
        Arc::new(
            LadEngine::builder()
                .deployment(&DeploymentConfig::small_test())
                .metrics(&MetricKind::ALL)
                .score_only()
                .build()
                .unwrap(),
        )
    }

    fn attack(damage: f64) -> AttackConfig {
        AttackConfig {
            degree_of_damage: damage,
            compromised_fraction: 0.2,
            class: AttackClass::DecBounded,
            targeted_metric: MetricKind::Diff,
        }
    }

    fn model(engine: &LadEngine, network: &Network) -> TrafficModel {
        let nodes: Vec<NodeId> = (0..40u32).map(|i| NodeId(i * 13)).collect();
        TrafficModel::clean(network, engine, nodes, 0xBEEF)
    }

    #[test]
    fn rounds_are_deterministic_and_vary_round_to_round() {
        let engine = engine();
        let network = Network::generate(engine.knowledge().clone(), 3);
        let model = model(&engine, &network);
        assert!(!model.nodes().is_empty());
        let a = model.round(&network, 5);
        let b = model.round(&network, 5);
        assert_eq!(a, b, "same round twice is bit-identical");
        let c = model.round(&network, 6);
        assert_ne!(a, c, "radio loss varies between rounds");
    }

    #[test]
    fn onset_timeline_switches_the_compromised_set_only() {
        let engine = engine();
        let network = Network::generate(engine.knowledge().clone(), 4);
        let clean = model(&engine, &network);
        let attacked = clean.with_attack(AttackTimeline::Onset { at: 10 }, attack(150.0), 0.5);
        assert_eq!(attacked.onset(), Some(10));
        let population = attacked.nodes();
        assert!(attacked.compromised_count() > 0);
        assert!(attacked.compromised_count() < population.len());

        // Before onset nobody attacks; afterwards exactly the compromised
        // set does, and their estimates move (forged locations).
        assert!(population.iter().all(|&n| !attacked.is_attacked(n, 9)));
        let hostile: Vec<NodeId> = population
            .iter()
            .copied()
            .filter(|&n| attacked.is_attacked(n, 10))
            .collect();
        assert_eq!(hostile.len(), attacked.compromised_count());
        let pre = attacked.round(&network, 9);
        let clean_round = clean.round(&network, 9);
        assert_eq!(pre, clean_round, "pre-onset traffic is exactly clean");
        let post = attacked.round(&network, 10);
        for ((node, clean_req), (_, post_req)) in clean.round(&network, 10).iter().zip(&post) {
            if attacked.is_attacked(*node, 10) {
                assert_ne!(clean_req.estimate, post_req.estimate, "forged location");
            } else {
                assert_eq!(clean_req, post_req, "clean nodes are untouched");
            }
        }
    }

    #[test]
    fn intermittent_and_ramp_timelines_modulate_the_active_set() {
        let engine = engine();
        let network = Network::generate(engine.knowledge().clone(), 5);
        let clean = model(&engine, &network);
        let burst = clean.with_attack(
            AttackTimeline::Intermittent {
                at: 4,
                period: 4,
                active: 2,
            },
            attack(120.0),
            0.4,
        );
        let node = burst
            .nodes()
            .into_iter()
            .find(|&n| burst.is_attacked(n, 4))
            .expect("someone attacks at onset");
        assert!(burst.is_attacked(node, 5), "second round of the burst");
        assert!(!burst.is_attacked(node, 6), "quiet part of the cycle");
        assert!(burst.is_attacked(node, 8), "next cycle");

        let ramp = clean.with_attack(
            AttackTimeline::Ramp { at: 0, full_at: 10 },
            attack(120.0),
            1.0,
        );
        let counts: Vec<usize> = (0..12)
            .map(|r| {
                ramp.nodes()
                    .iter()
                    .filter(|&&n| ramp.is_attacked(n, r))
                    .count()
            })
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "ramp is monotone");
        assert!(counts[0] > 0 && counts[0] < ramp.nodes().len());
        assert_eq!(counts[11], ramp.nodes().len(), "fully compromised");
    }

    #[test]
    fn score_streams_reflect_the_attack() {
        let engine = engine();
        let network = Network::generate(engine.knowledge().clone(), 6);
        let clean = model(&engine, &network);
        let attacked = clean.with_attack(AttackTimeline::Onset { at: 0 }, attack(200.0), 1.0);
        let clean_streams = clean.score_streams(&network, &engine, MetricKind::Diff, 0..6);
        let attacked_streams = attacked.score_streams(&network, &engine, MetricKind::Diff, 0..6);
        assert_eq!(clean_streams.len(), clean.nodes().len());
        let mean = |streams: &[Vec<f64>]| {
            let (sum, n) = streams
                .iter()
                .flatten()
                .fold((0.0, 0usize), |(s, n), &v| (s + v, n + 1));
            sum / n as f64
        };
        assert!(
            mean(&attacked_streams) > 2.0 * mean(&clean_streams),
            "a D=200 full compromise must dominate clean scores"
        );
    }

    #[test]
    fn hear_prob_one_freezes_clean_reports() {
        let engine = engine();
        let network = Network::generate(engine.knowledge().clone(), 8);
        let frozen = model(&engine, &network).with_hear_prob(1.0);
        assert_eq!(frozen.round(&network, 0), frozen.round(&network, 17));
    }
}
