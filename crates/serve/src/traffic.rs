//! Deterministic traffic generation: replaying attack timelines over a
//! simulated network.
//!
//! A [`TrafficModel`] models the serving workload: every round, each
//! sensor in the population hears its neighbourhood through radio loss
//! (each true neighbour is heard with the hear probability), re-runs
//! localization on what it heard, and reports the resulting
//! `(observation, estimate)` pair — the paper's one-shot pipeline applied
//! round after round, which is what makes the per-round clean score
//! streams (approximately) independent draws from the substrate's clean
//! distribution rather than a frozen per-node constant. An
//! [`AttackTimeline`] then turns part of the population hostile: from
//! attack onset, compromised nodes submit the paper's §7.1 attack (forged
//! location at distance `D`, greedily tainted observation) instead of
//! their honest report.
//!
//! Everything derives from one master seed via `lad_stats::seeds`, so a
//! traffic trace is a pure function of `(network, model, round)` — the
//! serving runtime's determinism tests and the temporal evaluation both
//! rely on this.

use lad_attack::{displaced_location, taint_observation, AttackConfig, Evasion};
use lad_core::engine::{DetectionRequest, LadEngine};
use lad_core::MetricKind;
use lad_geometry::Point2;
use lad_net::{Network, NodeId, Observation, ObservationBatch};
use lad_stats::seeds::derive_seed;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Seed-path tags, distinct from the evaluation harness's so traffic
/// streams never collide with Monte-Carlo trial streams.
const TAG_ROUND: u64 = 0x7_AFF1C;
const TAG_COMPROMISE: u64 = 0xC0_413D;
const TAG_FORGE: u64 = 0xF0_46ED;

/// When (and how broadly) the adversary is active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackTimeline {
    /// No attack, ever: pure clean traffic (warm-up / calibration runs).
    Clean,
    /// The full compromised set attacks every round from `at` onwards.
    Onset {
        /// First attacked round.
        at: u64,
    },
    /// From `at` onwards the compromised set attacks in bursts: `active`
    /// rounds out of every `period` (an adversary evading detection by
    /// going quiet).
    Intermittent {
        /// First attacked round.
        at: u64,
        /// Cycle length in rounds.
        period: u64,
        /// Attacked rounds at the start of each cycle (`1..=period`).
        active: u64,
    },
    /// The compromised set grows linearly from empty at `at` to the full
    /// set at `full_at` (a spreading compromise).
    Ramp {
        /// First attacked round.
        at: u64,
        /// Round at which the whole compromised set is active.
        full_at: u64,
    },
}

impl AttackTimeline {
    /// The first round at which any node attacks, or `None` for
    /// [`AttackTimeline::Clean`].
    pub fn onset(&self) -> Option<u64> {
        match *self {
            AttackTimeline::Clean => None,
            AttackTimeline::Onset { at }
            | AttackTimeline::Intermittent { at, .. }
            | AttackTimeline::Ramp { at, .. } => Some(at),
        }
    }

    /// How many of the `compromised` nodes (ordered by compromise rank) are
    /// actively attacking in `round`.
    fn active_count(&self, compromised: usize, round: u64) -> usize {
        match *self {
            AttackTimeline::Clean => 0,
            AttackTimeline::Onset { at } => {
                if round >= at {
                    compromised
                } else {
                    0
                }
            }
            AttackTimeline::Intermittent { at, period, active } => {
                if round >= at && (round - at) % period.max(1) < active {
                    compromised
                } else {
                    0
                }
            }
            AttackTimeline::Ramp { at, full_at } => {
                if round < at {
                    0
                } else if round >= full_at {
                    compromised
                } else {
                    let span = (full_at - at) as f64;
                    let progress = (round - at + 1) as f64 / (span + 1.0);
                    (compromised as f64 * progress).ceil() as usize
                }
            }
        }
    }
}

/// One reporting sensor: its true (clean) observation, from which each
/// round's heard observation is derived, plus a fallback estimate for the
/// rare round whose thinned observation cannot be localized.
#[derive(Debug, Clone)]
struct Reporter {
    node: NodeId,
    fallback_estimate: Point2,
    clean_observation: Observation,
    /// Position in the seeded compromise shuffle: rank < k ⇒ among the
    /// first k nodes to turn hostile.
    compromise_rank: usize,
}

/// A deterministic load generator over one simulated network. See the
/// [module docs](self) for the model.
#[derive(Clone)]
pub struct TrafficModel {
    reporters: Vec<Reporter>,
    localizer: std::sync::Arc<dyn lad_localization::LocalizationScheme>,
    knowledge: std::sync::Arc<lad_deployment::DeploymentKnowledge>,
    timeline: AttackTimeline,
    attack: Option<AttackConfig>,
    /// Number of reporters in the compromised set (the timeline activates
    /// them gradually or all at once).
    compromised: usize,
    hear_prob: f64,
    seed: u64,
    /// Post-revocation behaviour: `(node, round)` pairs, sorted by node —
    /// from `round` on the node no longer reports at all (a revoked
    /// attacker falls silent; a revoked honest node is pulled for
    /// re-attestation). Empty unless the closed loop feeds decisions back
    /// via [`Self::revoke_nodes`].
    silenced: Vec<(u32, u64)>,
    /// Quarantine notices: `(node, rounds the notices arrived in,
    /// ascending)`, sorted by node. Attackers react per the model's
    /// [`Evasion`] strategy **from each notice's round on** — querying a
    /// pre-notice round replays exactly the traffic that was served before
    /// the notice arrived, so the model stays a pure function of
    /// `(network, model state, round)` even mid-loop. Honest nodes ignore
    /// notices (their reports are suppressed server-side, not
    /// client-side).
    notices: Vec<(u32, Vec<u64>)>,
    /// How notified attackers adapt (`None`: they attack on unchanged).
    evasion: Option<Evasion>,
}

impl std::fmt::Debug for TrafficModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrafficModel")
            .field("reporters", &self.reporters.len())
            .field("timeline", &self.timeline)
            .field("attack", &self.attack)
            .field("compromised", &self.compromised)
            .field("hear_prob", &self.hear_prob)
            .field("seed", &self.seed)
            .field("silenced", &self.silenced.len())
            .field("notices", &self.notices.len())
            .field("evasion", &self.evasion)
            .finish()
    }
}

impl TrafficModel {
    /// Builds a clean traffic model over `nodes`: every round each node
    /// re-localizes with the engine's scheme (against the engine's
    /// *assumed* deployment knowledge — exactly what a deployed sensor
    /// holds) from that round's heard observation. Nodes whose full
    /// observation the scheme cannot localize are dropped at construction.
    ///
    /// # Panics
    /// Panics when `nodes` contains a duplicate id: the serving runtime
    /// keys detector state by node, so a duplicated reporter would fold
    /// two report streams into one node's state — silently diverging from
    /// any per-stream offline replay (and a duplicate could end up both
    /// clean and compromised at once).
    pub fn clean(network: &Network, engine: &LadEngine, nodes: Vec<NodeId>, seed: u64) -> Self {
        let mut unique: Vec<u32> = nodes.iter().map(|n| n.0).collect();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            unique.len(),
            nodes.len(),
            "traffic population contains duplicate node ids"
        );
        let knowledge = engine.knowledge();
        let mut reporters: Vec<Reporter> = nodes
            .into_iter()
            .filter_map(|node| {
                let clean_observation = network.true_observation(node);
                let fallback_estimate =
                    engine.localizer().estimate(knowledge, &clean_observation)?;
                Some(Reporter {
                    node,
                    fallback_estimate,
                    clean_observation,
                    compromise_rank: 0,
                })
            })
            .collect();

        // Seeded shuffle rank assignment: rank r means "the (r+1)-th node
        // to turn hostile", fixed for the model's lifetime so ramps grow
        // monotonically.
        let n = reporters.len();
        let order = lad_stats::seeds::seeded_partial_shuffle(
            n,
            n.saturating_sub(1),
            derive_seed(seed, &[TAG_COMPROMISE]),
        );
        for (rank, &idx) in order.iter().enumerate() {
            reporters[idx as usize].compromise_rank = rank;
        }

        Self {
            reporters,
            localizer: engine.localizer().clone(),
            knowledge: knowledge.clone(),
            timeline: AttackTimeline::Clean,
            attack: None,
            compromised: 0,
            hear_prob: DEFAULT_HEAR_PROB,
            seed,
            silenced: Vec::new(),
            notices: Vec::new(),
            evasion: None,
        }
    }

    /// Returns a copy with a different per-round hear probability (the
    /// chance each true neighbour is heard in a given round). 1.0 disables
    /// radio loss entirely — every clean report is then identical.
    pub fn with_hear_prob(mut self, hear_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&hear_prob),
            "hear probability must be in [0, 1], got {hear_prob}"
        );
        self.hear_prob = hear_prob;
        self
    }

    /// Returns a copy in which a `node_fraction` of the population turns
    /// hostile according to `timeline`. Each active attacker claims one
    /// consistent forged location (the §7.1 D-anomaly, drawn once per
    /// node) and re-runs the `attack`'s greedy taint against every
    /// attacked round's heard neighbourhood.
    ///
    /// # Panics
    /// Panics when `node_fraction ∉ [0, 1]`, when an
    /// [`AttackTimeline::Intermittent`] has `period = 0` or
    /// `active ∉ 1..=period`, or when an [`AttackTimeline::Ramp`] has
    /// `full_at < at` — each of those would silently describe a different
    /// attack than the caller believes (e.g. `active = 0` never attacks
    /// while `onset()` still reports an onset round).
    pub fn with_attack(
        &self,
        timeline: AttackTimeline,
        attack: AttackConfig,
        node_fraction: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&node_fraction),
            "compromised node fraction must be in [0, 1], got {node_fraction}"
        );
        match timeline {
            AttackTimeline::Intermittent { period, active, .. } => {
                assert!(period >= 1, "intermittent timeline needs period >= 1");
                assert!(
                    (1..=period).contains(&active),
                    "intermittent timeline needs active in 1..=period, got {active} of {period}"
                );
            }
            AttackTimeline::Ramp { at, full_at } => {
                assert!(
                    full_at >= at,
                    "ramp timeline needs full_at >= at, got {full_at} < {at}"
                );
            }
            AttackTimeline::Clean | AttackTimeline::Onset { .. } => {}
        }
        let mut model = self.clone();
        model.timeline = timeline;
        model.attack = Some(attack);
        model.compromised = (node_fraction * self.reporters.len() as f64).ceil() as usize;
        model
    }

    /// Returns a copy whose attackers *adapt* to quarantine notices with
    /// the given [`Evasion`] strategy (rotate the forged location, or go
    /// intermittent). Without a strategy, notified attackers keep attacking
    /// unchanged.
    ///
    /// # Panics
    /// Panics when the strategy's parameters are invalid (see
    /// [`Evasion::validate`]).
    pub fn with_evasion(mut self, evasion: Evasion) -> Self {
        evasion.validate();
        self.evasion = Some(evasion);
        self
    }

    /// Closed-loop feedback: from `round` on, each of `nodes` no longer
    /// reports at all — a revoked attacker falls silent (its reports would
    /// be suppressed server-side anyway, and continuing to transmit only
    /// feeds the operator evidence), and a revoked honest node is pulled
    /// for recovery/re-attestation. Revoking an already-silenced node
    /// keeps its earliest silencing round.
    pub fn revoke_nodes(&mut self, nodes: &[NodeId], round: u64) {
        for node in nodes {
            match self.silenced.binary_search_by_key(&node.0, |e| e.0) {
                Ok(i) => self.silenced[i].1 = self.silenced[i].1.min(round),
                Err(i) => self.silenced.insert(i, (node.0, round)),
            }
        }
    }

    /// Closed-loop feedback: each of `nodes` learns in `round` that its
    /// claimed region was quarantined. Attackers react per the model's
    /// [`Evasion`] strategy from that round on (each notice advances the
    /// forgery epoch for rotation); querying earlier rounds still replays
    /// the pre-notice traffic. Honest nodes ignore notices — their reports
    /// are suppressed server-side, not client-side.
    pub fn notify_quarantine(&mut self, nodes: &[NodeId], round: u64) {
        for node in nodes {
            match self.notices.binary_search_by_key(&node.0, |e| e.0) {
                Ok(i) => {
                    let rounds = &mut self.notices[i].1;
                    // Idempotent per (node, round): two foci quarantined in
                    // the same drain deliver ONE logical notice — a
                    // duplicate would silently advance the rotation epoch
                    // twice and break replay equivalence with a
                    // deduplicating caller.
                    if let Err(at) = rounds.binary_search(&round) {
                        rounds.insert(at, round);
                    }
                }
                Err(i) => self.notices.insert(i, (node.0, vec![round])),
            }
        }
    }

    /// The round from which `node` is silenced, if any.
    fn silenced_from(&self, node: u32) -> Option<u64> {
        self.silenced
            .binary_search_by_key(&node, |e| e.0)
            .ok()
            .map(|i| self.silenced[i].1)
    }

    /// The `(latest notice round <= round, notices received by round)` of
    /// `node` **as of** `round` — only notices that had already arrived
    /// count, so past rounds replay exactly as they were served.
    fn notice_state(&self, node: u32, round: u64) -> Option<(u64, u32)> {
        let i = self.notices.binary_search_by_key(&node, |e| e.0).ok()?;
        let rounds = &self.notices[i].1;
        let received = rounds.partition_point(|&r| r <= round);
        (received > 0).then(|| (rounds[received - 1], received as u32))
    }

    /// Whether `reporter` submits an *attacked* report in `round`, given
    /// the timeline's active count for that round (silencing is handled by
    /// the caller — a silenced node submits nothing at all).
    fn attacks_in_round(&self, reporter: &Reporter, active: usize, round: u64) -> bool {
        if reporter.compromise_rank >= active {
            return false;
        }
        match (self.evasion, self.notice_state(reporter.node.0, round)) {
            (Some(evasion), Some((notice_round, _))) => {
                evasion.attacks_after_notice(round - notice_round)
            }
            _ => true,
        }
    }

    /// The forgery epoch `reporter` uses in an attacked `round`: 0 until a
    /// quarantine notice arrives, then per the evasion strategy (rotation
    /// advances it once per received notice). Epoch 0 derives the same
    /// per-node forge seed as a notice-free model, so closed-loop traffic
    /// is bit-identical to open-loop traffic up to each node's first
    /// notice round.
    fn forgery_epoch(&self, reporter: &Reporter, round: u64) -> u32 {
        match (self.evasion, self.notice_state(reporter.node.0, round)) {
            (Some(evasion), Some((_, count))) => evasion.forgery_epoch(count),
            _ => 0,
        }
    }

    /// The reporting population (after localization drops), in submission
    /// order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.reporters.iter().map(|r| r.node).collect()
    }

    /// The number of reporters in the (eventually) compromised set.
    pub fn compromised_count(&self) -> usize {
        self.compromised
    }

    /// The timeline's first attacked round, or `None` for clean traffic.
    pub fn onset(&self) -> Option<u64> {
        match self.attack {
            Some(_) => self.timeline.onset(),
            None => None,
        }
    }

    /// One flag per reporter, in population order ([`Self::nodes`]):
    /// whether it submits an attacked report in `round` (silenced nodes
    /// submit nothing; notified attackers follow the evasion strategy).
    /// One O(population) pass — prefer this over calling
    /// [`Self::is_attacked`] per node.
    pub fn attacked_mask(&self, round: u64) -> Vec<bool> {
        let active = self.timeline.active_count(self.compromised, round);
        self.reporters
            .iter()
            .map(|r| {
                self.silenced_from(r.node.0).is_none_or(|from| round < from)
                    && self.attacks_in_round(r, active, round)
            })
            .collect()
    }

    /// Whether `node` submits an attacked report in `round`.
    pub fn is_attacked(&self, node: NodeId, round: u64) -> bool {
        let active = self.timeline.active_count(self.compromised, round);
        if self.silenced_from(node.0).is_some_and(|from| round >= from) {
            return false;
        }
        self.reporters
            .iter()
            .any(|r| r.node == node && self.attacks_in_round(r, active, round))
    }

    /// Calls `report(node, observation, estimate)` for every reporter's
    /// report of `round`, in population order, reusing one thinning scratch
    /// observation (and one µ scratch for attacked reports) across the
    /// whole round — the allocation-free core both [`Self::round`] and
    /// [`Self::round_rows`] drive.
    fn for_each_report<F: FnMut(NodeId, &Observation, Point2)>(
        &self,
        network: &Network,
        round: u64,
        mut report: F,
    ) {
        let active = self.timeline.active_count(self.compromised, round);
        let mut heard = Observation::zeros(self.knowledge.group_count());
        let mut mu_scratch: Vec<f64> = Vec::new();
        for reporter in &self.reporters {
            if self
                .silenced_from(reporter.node.0)
                .is_some_and(|from| round >= from)
            {
                // Revoked (or recovered) node: no report at all.
                continue;
            }
            let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(
                self.seed,
                &[TAG_ROUND, round, reporter.node.0 as u64],
            ));
            if self.attacks_in_round(reporter, active, round) {
                // §7.1 attack, served: the adversary commits to ONE forged
                // location per victim (a consistent lie, drawn once from a
                // per-node seed) and re-runs the greedy taint against every
                // attacked round's heard neighbourhood. A quarantined
                // rotate-forgery attacker advances to a fresh forgery epoch
                // (a new seed path) per notice; epoch 0 keeps the original
                // seed path, so open-loop traffic is unchanged.
                let attack = self.attack.expect("active attacker implies attack config");
                let knowledge = network.knowledge();
                let epoch = self.forgery_epoch(reporter, round);
                let forge_seed = if epoch == 0 {
                    derive_seed(self.seed, &[TAG_FORGE, reporter.node.0 as u64])
                } else {
                    derive_seed(
                        self.seed,
                        &[TAG_FORGE, reporter.node.0 as u64, epoch as u64],
                    )
                };
                let mut forge_rng = ChaCha8Rng::seed_from_u64(forge_seed);
                let forged = displaced_location(
                    &mut forge_rng,
                    network.node(reporter.node).resident_point,
                    attack.degree_of_damage,
                    knowledge.config().area(),
                );
                self.thin_into(&reporter.clean_observation, &mut rng, &mut heard);
                let budget = (attack.compromised_fraction * heard.total() as f64).round() as usize;
                knowledge.expected_observation_into(forged, &mut mu_scratch);
                let tainted = taint_observation(
                    attack.class,
                    attack.targeted_metric,
                    &heard,
                    &mu_scratch,
                    budget,
                    knowledge.group_size(),
                );
                report(reporter.node, &tainted, forged);
            } else {
                // Honest report: hear the neighbourhood through radio
                // loss, re-localize from what was heard.
                self.thin_into(&reporter.clean_observation, &mut rng, &mut heard);
                let estimate = self
                    .localizer
                    .estimate(&self.knowledge, &heard)
                    .unwrap_or(reporter.fallback_estimate);
                report(reporter.node, &heard, estimate);
            }
        }
    }

    /// Generates one round of reports, in population order. `network` must
    /// be the network the model was built from (attacked reports re-run the
    /// §7.1 simulation against it).
    ///
    /// Allocates one `DetectionRequest` (with its dense observation) per
    /// report; the serving path uses [`Self::round_rows`], which emits a
    /// flat [`ObservationBatch`] instead.
    pub fn round(&self, network: &Network, round: u64) -> Vec<(NodeId, DetectionRequest)> {
        let mut out = Vec::with_capacity(self.reporters.len());
        self.for_each_report(network, round, |node, observation, estimate| {
            out.push((node, DetectionRequest::new(observation.clone(), estimate)));
        });
        out
    }

    /// Generates one round of reports into reusable flat buffers: the
    /// reporting nodes (population order) and their `(sparse observation,
    /// estimate)` rows. After warm-up the honest-traffic path performs no
    /// per-report allocation — this is what the serving loop submits via
    /// [`ServeRuntime::submit_rows`](crate::ServeRuntime::submit_rows).
    pub fn round_rows(
        &self,
        network: &Network,
        round: u64,
        nodes: &mut Vec<NodeId>,
        rows: &mut ObservationBatch,
    ) {
        nodes.clear();
        rows.reset(self.knowledge.group_count());
        self.for_each_report(network, round, |node, observation, estimate| {
            nodes.push(node);
            rows.push(observation, estimate);
        });
    }

    /// Radio loss: each observed neighbour survives the round independently
    /// with the hear probability. Writes the heard counts into `out`.
    fn thin_into(&self, observation: &Observation, rng: &mut ChaCha8Rng, out: &mut Observation) {
        if self.hear_prob >= 1.0 {
            out.clone_from(observation);
            return;
        }
        for (slot, &c) in out.counts_mut().iter_mut().zip(observation.counts()) {
            *slot = (0..c)
                .filter(|_| rng.gen_range(0.0..1.0) < self.hear_prob)
                .count() as u32;
        }
    }

    /// Convenience for calibration and offline evaluation: generates rounds
    /// `rounds`, scores every report with `engine`, and returns one
    /// per-node score stream (for `metric`) per reporter, in population
    /// order — ready for `SequentialDetector::calibrate_*`.
    ///
    /// # Panics
    /// Panics when the engine does not score `metric`, or when revocation
    /// feedback has silenced part of the population (the streams are
    /// indexed by population order, which silencing would desynchronise —
    /// closed-loop replays must consume rounds directly).
    pub fn score_streams(
        &self,
        network: &Network,
        engine: &LadEngine,
        metric: MetricKind,
        rounds: Range<u64>,
    ) -> Vec<Vec<f64>> {
        assert!(
            self.silenced.is_empty(),
            "score_streams requires a model without revocation feedback"
        );
        let column = engine
            .metric_index(metric)
            .expect("engine scores the requested metric");
        let width = engine.metrics().len();
        let mut streams = vec![Vec::with_capacity(rounds.clone().count()); self.reporters.len()];
        let mut scores = Vec::new();
        let mut nodes = Vec::new();
        let mut rows = ObservationBatch::new(self.knowledge.group_count());
        for round in rounds {
            self.round_rows(network, round, &mut nodes, &mut rows);
            engine.score_rows_into(&rows, &mut scores);
            for (stream, row) in streams.iter_mut().zip(scores.chunks_exact(width)) {
                stream.push(row[column]);
            }
        }
        streams
    }
}

/// Default per-round hear probability: light radio loss, enough to make
/// clean score streams fluctuate round to round.
pub const DEFAULT_HEAR_PROB: f64 = 0.9;

#[cfg(test)]
mod tests {
    use super::*;
    use lad_attack::AttackClass;
    use lad_deployment::DeploymentConfig;
    use std::sync::Arc;

    fn engine() -> Arc<LadEngine> {
        Arc::new(
            LadEngine::builder()
                .deployment(&DeploymentConfig::small_test())
                .metrics(&MetricKind::ALL)
                .score_only()
                .build()
                .unwrap(),
        )
    }

    fn attack(damage: f64) -> AttackConfig {
        AttackConfig {
            degree_of_damage: damage,
            compromised_fraction: 0.2,
            class: AttackClass::DecBounded,
            targeted_metric: MetricKind::Diff,
        }
    }

    fn model(engine: &LadEngine, network: &Network) -> TrafficModel {
        let nodes: Vec<NodeId> = (0..40u32).map(|i| NodeId(i * 13)).collect();
        TrafficModel::clean(network, engine, nodes, 0xBEEF)
    }

    #[test]
    fn rounds_are_deterministic_and_vary_round_to_round() {
        let engine = engine();
        let network = Network::generate(engine.knowledge().clone(), 3);
        let model = model(&engine, &network);
        assert!(!model.nodes().is_empty());
        let a = model.round(&network, 5);
        let b = model.round(&network, 5);
        assert_eq!(a, b, "same round twice is bit-identical");
        let c = model.round(&network, 6);
        assert_ne!(a, c, "radio loss varies between rounds");
    }

    #[test]
    fn onset_timeline_switches_the_compromised_set_only() {
        let engine = engine();
        let network = Network::generate(engine.knowledge().clone(), 4);
        let clean = model(&engine, &network);
        let attacked = clean.with_attack(AttackTimeline::Onset { at: 10 }, attack(150.0), 0.5);
        assert_eq!(attacked.onset(), Some(10));
        let population = attacked.nodes();
        assert!(attacked.compromised_count() > 0);
        assert!(attacked.compromised_count() < population.len());

        // Before onset nobody attacks; afterwards exactly the compromised
        // set does, and their estimates move (forged locations).
        assert!(population.iter().all(|&n| !attacked.is_attacked(n, 9)));
        let hostile: Vec<NodeId> = population
            .iter()
            .copied()
            .filter(|&n| attacked.is_attacked(n, 10))
            .collect();
        assert_eq!(hostile.len(), attacked.compromised_count());
        let pre = attacked.round(&network, 9);
        let clean_round = clean.round(&network, 9);
        assert_eq!(pre, clean_round, "pre-onset traffic is exactly clean");
        let post = attacked.round(&network, 10);
        for ((node, clean_req), (_, post_req)) in clean.round(&network, 10).iter().zip(&post) {
            if attacked.is_attacked(*node, 10) {
                assert_ne!(clean_req.estimate, post_req.estimate, "forged location");
            } else {
                assert_eq!(clean_req, post_req, "clean nodes are untouched");
            }
        }
    }

    #[test]
    fn intermittent_and_ramp_timelines_modulate_the_active_set() {
        let engine = engine();
        let network = Network::generate(engine.knowledge().clone(), 5);
        let clean = model(&engine, &network);
        let burst = clean.with_attack(
            AttackTimeline::Intermittent {
                at: 4,
                period: 4,
                active: 2,
            },
            attack(120.0),
            0.4,
        );
        let node = burst
            .nodes()
            .into_iter()
            .find(|&n| burst.is_attacked(n, 4))
            .expect("someone attacks at onset");
        assert!(burst.is_attacked(node, 5), "second round of the burst");
        assert!(!burst.is_attacked(node, 6), "quiet part of the cycle");
        assert!(burst.is_attacked(node, 8), "next cycle");

        let ramp = clean.with_attack(
            AttackTimeline::Ramp { at: 0, full_at: 10 },
            attack(120.0),
            1.0,
        );
        let counts: Vec<usize> = (0..12)
            .map(|r| {
                ramp.nodes()
                    .iter()
                    .filter(|&&n| ramp.is_attacked(n, r))
                    .count()
            })
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "ramp is monotone");
        assert!(counts[0] > 0 && counts[0] < ramp.nodes().len());
        assert_eq!(counts[11], ramp.nodes().len(), "fully compromised");
    }

    #[test]
    fn score_streams_reflect_the_attack() {
        let engine = engine();
        let network = Network::generate(engine.knowledge().clone(), 6);
        let clean = model(&engine, &network);
        let attacked = clean.with_attack(AttackTimeline::Onset { at: 0 }, attack(200.0), 1.0);
        let clean_streams = clean.score_streams(&network, &engine, MetricKind::Diff, 0..6);
        let attacked_streams = attacked.score_streams(&network, &engine, MetricKind::Diff, 0..6);
        assert_eq!(clean_streams.len(), clean.nodes().len());
        let mean = |streams: &[Vec<f64>]| {
            let (sum, n) = streams
                .iter()
                .flatten()
                .fold((0.0, 0usize), |(s, n), &v| (s + v, n + 1));
            sum / n as f64
        };
        assert!(
            mean(&attacked_streams) > 2.0 * mean(&clean_streams),
            "a D=200 full compromise must dominate clean scores"
        );
    }

    #[test]
    fn hear_prob_one_freezes_clean_reports() {
        let engine = engine();
        let network = Network::generate(engine.knowledge().clone(), 8);
        let frozen = model(&engine, &network).with_hear_prob(1.0);
        assert_eq!(frozen.round(&network, 0), frozen.round(&network, 17));
    }

    #[test]
    fn ramp_active_count_edge_rounding() {
        let ramp = AttackTimeline::Ramp { at: 5, full_at: 9 };
        // Nobody attacks before the onset round.
        assert_eq!(ramp.active_count(4, 4), 0);
        // At round == at the first slice is already active: with span 4,
        // progress is 1/5, and ceil(4 * 1/5) = 1.
        assert_eq!(ramp.active_count(4, 5), 1);
        // Ceil rounding can saturate the set *before* full_at:
        // at round 8, progress is 4/5 and ceil(4 * 0.8) = 4.
        assert_eq!(ramp.active_count(4, 8), 4);
        // At round == full_at (and after) the whole set is active.
        assert_eq!(ramp.active_count(4, 9), 4);
        assert_eq!(ramp.active_count(4, 100), 4);
        // Monotone in the round.
        let counts: Vec<usize> = (0..12).map(|r| ramp.active_count(7, r)).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");

        // compromised == 0: always zero, at every edge.
        for round in [0, 5, 7, 9, 20] {
            assert_eq!(ramp.active_count(0, round), 0);
        }
        // compromised == 1: ceil activates the single node at round == at.
        assert_eq!(ramp.active_count(1, 4), 0);
        assert_eq!(ramp.active_count(1, 5), 1);
        assert_eq!(ramp.active_count(1, 9), 1);

        // Degenerate ramp (at == full_at): instant full compromise, i.e.
        // exactly an onset — the `round >= full_at` arm catches round == at.
        let instant = AttackTimeline::Ramp { at: 3, full_at: 3 };
        assert_eq!(instant.active_count(5, 2), 0);
        assert_eq!(instant.active_count(5, 3), 5);
        assert_eq!(instant.active_count(5, 4), 5);
    }

    #[test]
    fn revoked_nodes_fall_silent_and_keep_their_earliest_round() {
        let engine = engine();
        let network = Network::generate(engine.knowledge().clone(), 9);
        let mut traffic = model(&engine, &network).with_attack(
            AttackTimeline::Onset { at: 0 },
            attack(150.0),
            0.3,
        );
        let population = traffic.nodes();
        let victim = population[0];
        assert!(traffic.round(&network, 3).iter().any(|(n, _)| *n == victim));

        traffic.revoke_nodes(&[victim], 4);
        let before: Vec<NodeId> = traffic.round(&network, 3).iter().map(|(n, _)| *n).collect();
        let after: Vec<NodeId> = traffic.round(&network, 4).iter().map(|(n, _)| *n).collect();
        assert!(
            before.contains(&victim),
            "reports until the revocation round"
        );
        assert!(!after.contains(&victim), "silent from the revocation round");
        assert!(!traffic.is_attacked(victim, 10));
        assert!(!traffic.attacked_mask(10)[0]);

        // Re-revoking later does not resurrect the node.
        traffic.revoke_nodes(&[victim], 9);
        assert!(!traffic.round(&network, 6).iter().any(|(n, _)| *n == victim));

        // The other reporters are untouched, in population order.
        let expected: Vec<NodeId> = population
            .iter()
            .copied()
            .filter(|n| *n != victim)
            .collect();
        assert_eq!(after, expected);
    }

    #[test]
    fn rotate_forgery_changes_the_forged_location_after_a_notice() {
        let engine = engine();
        let network = Network::generate(engine.knowledge().clone(), 10);
        let base = model(&engine, &network).with_attack(
            AttackTimeline::Onset { at: 0 },
            attack(150.0),
            0.5,
        );
        let mut rotating = base.clone().with_evasion(Evasion::RotateForgery);
        let attacker = base
            .nodes()
            .into_iter()
            .find(|&n| base.is_attacked(n, 0))
            .expect("attackers exist");
        let forged_of = |traffic: &TrafficModel, round| {
            traffic
                .round(&network, round)
                .into_iter()
                .find(|(n, _)| *n == attacker)
                .map(|(_, req)| req.estimate)
                .unwrap()
        };

        // Without a notice the evasion model is bit-identical to open loop.
        assert_eq!(base.round(&network, 2), rotating.round(&network, 2));
        let original = forged_of(&rotating, 2);
        rotating.notify_quarantine(&[attacker], 3);
        let rotated = forged_of(&rotating, 3);
        assert_ne!(original, rotated, "rotation abandons the burnt forgery");
        assert_eq!(
            base.round(&network, 2),
            rotating.round(&network, 2),
            "pre-notice rounds replay exactly as they were served"
        );
        assert_eq!(
            rotated,
            forged_of(&rotating, 5),
            "the rotated forgery is again consistent across rounds"
        );
        assert!(
            rotating.is_attacked(attacker, 4),
            "rotation never goes quiet"
        );

        // A second notice rotates again.
        rotating.notify_quarantine(&[attacker], 6);
        assert_ne!(forged_of(&rotating, 6), rotated);
    }

    #[test]
    fn go_intermittent_bursts_after_a_notice() {
        let engine = engine();
        let network = Network::generate(engine.knowledge().clone(), 11);
        let base = model(&engine, &network).with_attack(
            AttackTimeline::Onset { at: 0 },
            attack(150.0),
            0.5,
        );
        let mut bursty = base.clone().with_evasion(Evasion::GoIntermittent {
            period: 4,
            active: 1,
        });
        let attacker = base
            .nodes()
            .into_iter()
            .find(|&n| base.is_attacked(n, 0))
            .expect("attackers exist");
        assert!(bursty.is_attacked(attacker, 2), "attacks until notified");
        bursty.notify_quarantine(&[attacker], 8);
        let pattern: Vec<bool> = (8..16).map(|r| bursty.is_attacked(attacker, r)).collect();
        assert_eq!(
            pattern,
            [true, false, false, false, true, false, false, false],
            "one attacked round per cycle from the notice round"
        );
        // Honest rounds still produce a (clean) report.
        assert!(bursty
            .round(&network, 9)
            .iter()
            .any(|(n, _)| *n == attacker));
    }
}
