//! Prometheus text exposition of a [`ServeStats`] export.
//!
//! [`render_prometheus`] turns one stats export into the plain-text
//! exposition format every Prometheus-compatible scraper speaks (`# HELP`
//! / `# TYPE` preamble, one `name{labels} value` sample per line). The
//! wire front door serves it on a `HealthRequest(Prometheus)` frame, so a
//! scrape bridge is one `WireClient::scrape_prometheus` call away — no
//! HTTP stack inside the runtime.
//!
//! Conventions:
//!
//! * monotone runtime counters are `_total` counters;
//! * gauges carry the instantaneous or latest-window value;
//! * stage latency quantiles are labelled
//!   `{stage="score",quantile="p99"}` — one metric, [`Stage::ALL`]-order
//!   series;
//! * the health verdict exports both a severity gauge
//!   (`lad_health_status`: 0 healthy … 3 drifting) and one
//!   `lad_health_cause{cause="..."}` sample per firing cause, so an
//!   alerting rule can match either the level or the specific cause.

use crate::runtime::ServeStats;
use lad_telemetry::Stage;
use std::fmt::Write;

/// Appends one `# HELP`/`# TYPE` preamble.
fn preamble(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Appends one un-labelled integer sample with its preamble.
fn metric_u64(out: &mut String, name: &str, kind: &str, help: &str, value: u64) {
    preamble(out, name, kind, help);
    let _ = writeln!(out, "{name} {value}");
}

/// Appends one un-labelled float sample with its preamble.
fn metric_f64(out: &mut String, name: &str, kind: &str, help: &str, value: f64) {
    preamble(out, name, kind, help);
    let _ = writeln!(out, "{name} {value}");
}

/// Renders `stats` in the Prometheus text exposition format. Pure and
/// allocation-bounded: the output is a function of the export alone, so
/// the same stats render to the same text anywhere.
pub fn render_prometheus(stats: &ServeStats) -> String {
    let mut out = String::with_capacity(4096);
    let c = &stats.counters;

    metric_u64(
        &mut out,
        "lad_stats_version",
        "gauge",
        "Stats export format version.",
        stats.stats_version as u64,
    );
    metric_u64(
        &mut out,
        "lad_reports_submitted_total",
        "counter",
        "Reports accepted into the scoring pipeline.",
        c.submitted,
    );
    metric_u64(
        &mut out,
        "lad_reports_processed_total",
        "counter",
        "Reports fully scored and decided.",
        c.processed,
    );
    metric_u64(
        &mut out,
        "lad_alarms_total",
        "counter",
        "Sequential-detector alarms raised.",
        c.alarms,
    );
    metric_u64(
        &mut out,
        "lad_reports_suppressed_total",
        "counter",
        "Reports suppressed by the response filter before scoring.",
        c.suppressed,
    );
    metric_u64(
        &mut out,
        "lad_reports_degraded_total",
        "counter",
        "Reports accepted in degraded (cheap-kernel) mode.",
        c.degraded,
    );
    metric_u64(
        &mut out,
        "lad_reports_shed_total",
        "counter",
        "Reports NACKed at the ingest boundary.",
        c.shed,
    );
    metric_u64(
        &mut out,
        "lad_decode_errors_total",
        "counter",
        "Wire frames that failed to decode.",
        c.decode_errors,
    );
    metric_f64(
        &mut out,
        "lad_mu_cache_hit_rate",
        "gauge",
        "Cumulative mu-memoization hit rate.",
        c.mu_cache_hit_rate(),
    );
    metric_u64(
        &mut out,
        "lad_queue_depth_batches",
        "gauge",
        "Queued batches across all shards at the last fold.",
        stats.telemetry.queue_depth,
    );
    metric_u64(
        &mut out,
        "lad_uptime_nanos",
        "gauge",
        "Nanoseconds since the runtime started.",
        stats.telemetry.uptime_nanos,
    );
    metric_u64(
        &mut out,
        "lad_events_sampled_out_total",
        "counter",
        "Structured events producers sampled out under flood.",
        stats.telemetry.events_sampled_out,
    );

    // Stage latencies: one series per (stage, quantile), plus span counts.
    preamble(
        &mut out,
        "lad_stage_latency_nanos",
        "gauge",
        "Per-stage span latency quantiles (one-sided <=6.25% bucket error).",
    );
    for stage in Stage::ALL {
        let s = stats.telemetry.stage(stage);
        let name = stage.name();
        let _ = writeln!(
            out,
            "lad_stage_latency_nanos{{stage=\"{name}\",quantile=\"p50\"}} {}",
            s.p50_nanos
        );
        let _ = writeln!(
            out,
            "lad_stage_latency_nanos{{stage=\"{name}\",quantile=\"p99\"}} {}",
            s.p99_nanos
        );
    }
    preamble(
        &mut out,
        "lad_stage_spans_total",
        "counter",
        "Spans recorded per pipeline stage.",
    );
    for stage in Stage::ALL {
        let _ = writeln!(
            out,
            "lad_stage_spans_total{{stage=\"{}\"}} {}",
            stage.name(),
            stats.telemetry.stage(stage).count
        );
    }

    // Windowed series: the latest closed window, if any, plus ring totals.
    metric_u64(
        &mut out,
        "lad_windows_closed_total",
        "counter",
        "Time-series windows closed since start.",
        stats.series.windows_closed,
    );
    if let Some(window) = stats.series.latest() {
        metric_f64(
            &mut out,
            "lad_window_throughput_per_sec",
            "gauge",
            "Reports processed per second over the latest closed window.",
            window.throughput_per_sec(),
        );
        metric_f64(
            &mut out,
            "lad_window_alarm_rate",
            "gauge",
            "Alarms per processed report over the latest closed window.",
            window.alarm_rate(),
        );
        metric_u64(
            &mut out,
            "lad_window_shed",
            "gauge",
            "Reports shed during the latest closed window.",
            window.shed,
        );
        metric_u64(
            &mut out,
            "lad_window_degraded",
            "gauge",
            "Reports accepted degraded during the latest closed window.",
            window.degraded,
        );
        metric_f64(
            &mut out,
            "lad_window_mu_cache_hit_rate",
            "gauge",
            "Mu-cache hit rate over the latest closed window.",
            window.mu_cache_hit_rate,
        );
    }

    // Drift monitor.
    metric_u64(
        &mut out,
        "lad_drift_monitor_enabled",
        "gauge",
        "Whether a drift monitor is configured (1) or not (0).",
        u64::from(stats.drift.enabled),
    );
    if stats.drift.enabled {
        metric_f64(
            &mut out,
            "lad_drift_ks",
            "gauge",
            "KS distance between live clean scores and the calibration baseline.",
            stats.drift.ks,
        );
        metric_f64(
            &mut out,
            "lad_drift_ks_tolerance",
            "gauge",
            "Configured KS tolerance.",
            stats.drift.ks_tolerance,
        );
        metric_u64(
            &mut out,
            "lad_drift_flagging",
            "gauge",
            "Whether the latest evaluation flagged on KS or alarm-rate (1) or not (0).",
            u64::from(stats.drift.flagging()),
        );
        metric_u64(
            &mut out,
            "lad_drift_clean_scores",
            "gauge",
            "Clean (non-alarming) scores accumulated for the drift comparison.",
            stats.drift.clean_scores,
        );
        metric_f64(
            &mut out,
            "lad_observed_far",
            "gauge",
            "Observed alarms per processed report at the latest evaluation.",
            stats.drift.observed_far,
        );
        metric_f64(
            &mut out,
            "lad_target_far",
            "gauge",
            "Calibrated per-report false-alarm target.",
            stats.drift.target_far,
        );
        metric_u64(
            &mut out,
            "lad_drift_evaluations_total",
            "counter",
            "Drift evaluations that had enough samples for a verdict.",
            stats.drift.evaluations,
        );
        metric_u64(
            &mut out,
            "lad_drift_flagged_total",
            "counter",
            "Drift evaluations that flagged over the runtime's life.",
            stats.drift.flagged,
        );
    }

    // Health verdict.
    metric_u64(
        &mut out,
        "lad_health_status",
        "gauge",
        "Derived health severity: 0 healthy, 1 degraded, 2 overloaded, 3 drifting.",
        stats.health.status.severity(),
    );
    preamble(
        &mut out,
        "lad_health_cause",
        "gauge",
        "One sample per firing health cause.",
    );
    for cause in &stats.health.causes {
        let label = match cause {
            lad_telemetry::HealthCause::ScoreDrift { .. } => "score_drift",
            lad_telemetry::HealthCause::AlarmRateOutOfBand { .. } => "alarm_rate_out_of_band",
            lad_telemetry::HealthCause::SheddingLoad { .. } => "shedding_load",
            lad_telemetry::HealthCause::QueueBacklog { .. } => "queue_backlog",
            lad_telemetry::HealthCause::DegradedScoring { .. } => "degraded_scoring",
        };
        let _ = writeln!(out, "lad_health_cause{{cause=\"{label}\"}} 1");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::DriftSnapshot;
    use crate::runtime::{ServeCounters, STATS_VERSION};
    use lad_telemetry::{HealthReport, SeriesSnapshot, Telemetry};

    fn stats() -> ServeStats {
        let telemetry = Telemetry::new(1);
        telemetry.shard(0).stage(Stage::Score).record(1000);
        ServeStats {
            stats_version: STATS_VERSION,
            counters: ServeCounters {
                submitted: 100,
                processed: 90,
                alarms: 3,
                ..ServeCounters::default()
            },
            telemetry: telemetry.fold(),
            series: SeriesSnapshot {
                window_nanos: 0,
                windows_closed: 0,
                windows_dropped: 0,
                windows: Vec::new(),
            },
            drift: DriftSnapshot::disabled(),
            health: HealthReport::healthy(),
        }
    }

    #[test]
    fn exposition_has_core_samples_and_valid_shape() {
        let text = render_prometheus(&stats());
        assert!(text.contains("lad_reports_submitted_total 100"));
        assert!(text.contains("lad_reports_processed_total 90"));
        assert!(text.contains("lad_alarms_total 3"));
        assert!(text.contains("lad_health_status 0"));
        assert!(text.contains("lad_drift_monitor_enabled 0"));
        assert!(text.contains("# TYPE lad_stage_latency_nanos gauge"));
        assert!(text.contains("lad_stage_latency_nanos{stage=\"score\",quantile=\"p99\"}"));
        // Every non-comment line is `name{labels}? value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
        }
        // Each HELP has a TYPE and at least the possibility of samples;
        // no duplicate TYPE declarations for one metric.
        let mut seen = std::collections::HashSet::new();
        for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
            let name = line.split_whitespace().nth(2).expect("metric name");
            assert!(seen.insert(name.to_string()), "duplicate TYPE for {name}");
        }
    }

    #[test]
    fn firing_causes_and_drift_metrics_appear_when_present() {
        let mut s = stats();
        s.drift = DriftSnapshot {
            enabled: true,
            clean_scores: 5000,
            ks: 0.31,
            ks_tolerance: 0.05,
            drifting: true,
            observed_far: 0.04,
            target_far: 0.01,
            far_band: 0.01,
            far_out_of_band: true,
            evaluations: 7,
            flagged: 2,
        };
        s.health = HealthReport::derive(&lad_telemetry::HealthInputs {
            window_shed: 12,
            drift: Some((0.31, 0.05)),
            ..Default::default()
        });
        let text = render_prometheus(&s);
        assert!(text.contains("lad_drift_ks 0.31"));
        assert!(text.contains("lad_drift_flagging 1"));
        assert!(text.contains("lad_health_status 3"));
        assert!(text.contains("lad_health_cause{cause=\"score_drift\"} 1"));
        assert!(text.contains("lad_health_cause{cause=\"shedding_load\"} 1"));
    }
}
