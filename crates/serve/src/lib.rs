//! `lad_serve` — the sharded online detection runtime.
//!
//! The paper (and the batch engine built from it) answers *"is this one
//! `(observation, estimate)` pair anomalous?"*. A deployment is a service:
//! millions of nodes report localization rounds continuously, and the
//! operational questions are **time-to-detection** after attack onset and
//! **false alarms per hour** under clean traffic. This crate turns per-round
//! LAD scores into stateful, per-node sequential decisions at serving
//! volume:
//!
//! ```text
//!             submit_batch(round, reports)
//!                        │
//!              ResponseFilter (revoked node /
//!              quarantined region ⇒ suppressed
//!              before any shard sees the work)
//!                        │
//!            deterministic node → shard routing
//!          ┌─────────────┼─────────────┐
//!          ▼             ▼             ▼
//!      shard 0       shard 1   …   shard N-1        (std threads, bounded
//!      ────────      ────────      ────────          mpsc queues ⇒ natural
//!      score with    score with    score with        backpressure)
//!      LadEngine     LadEngine     LadEngine
//!          │             │             │
//!      per-node CUSUM / EWMA / one-shot state
//!      (lad_stats::sequential, O(1) per node)
//!          │             │             │
//!          └──────►  alarm stream  ◄───┘
//!                        │
//!          lad_response: attribute → revoke →
//!          install_response_filter (closed loop)
//! ```
//!
//! * [`ServeRuntime`] — the runtime itself: worker shards over bounded
//!   channels, per-node detector state keyed by [`lad_net::NodeId`],
//!   batched ingestion through the engine's flat scoring kernel, an alarm
//!   output stream, live [`ServeCounters`], graceful shutdown, versioned
//!   [`ServeSnapshot`] save/restore of all detector state **and** undrained
//!   alarms (v2), and a pluggable [`ResponseFilter`] hook that suppresses
//!   reports from revoked nodes / quarantined regions before they reach a
//!   shard (the enforcement half of the `lad_response` closed loop).
//! * [`TrafficModel`] — a deterministic load generator replaying attack
//!   timelines (clean warm-up, onset at round *t*, intermittent bursts,
//!   ramping compromise) over a simulated network, for evaluation and
//!   benchmarking of the serving path — including *post-revocation*
//!   behaviour: revoked nodes fall silent, and quarantined attackers adapt
//!   per [`lad_attack::Evasion`] (rotate the forged location, or go
//!   intermittent).
//!
//! For ingest across a process boundary, the `lad_wire` crate puts a
//! framed binary front door (TCP / Unix-domain, validate-once decoding,
//! explicit rate-limit → degrade → shed overload policy) in front of
//! [`ServeRuntime::submit_rows`]; the `degraded` / `shed` /
//! `decode_errors` members of [`ServeCounters`] are fed by that path.
//!
//! Alarm decisions are **bit-deterministic in the shard count**: routing is
//! a pure function of the node id, every node's rounds reach its shard in
//! submission order, and scoring is identical on every thread — so the set
//! of `(node, round)` alarms produced by a fixed traffic trace is the same
//! at 1, 2, or 64 shards (an integration test asserts exactly that).
//!
//! # Example
//!
//! ```
//! use lad_core::engine::LadEngine;
//! use lad_core::MetricKind;
//! use lad_deployment::DeploymentConfig;
//! use lad_net::Network;
//! use lad_serve::{AttackTimeline, ServeConfig, ServeRuntime, TrafficModel};
//! use lad_stats::SequentialDetector;
//! use lad_attack::{AttackClass, AttackConfig};
//! use std::sync::Arc;
//!
//! // A score-only engine and a network for it to watch.
//! let engine = Arc::new(
//!     LadEngine::builder()
//!         .deployment(&DeploymentConfig::small_test())
//!         .metrics(&MetricKind::ALL)
//!         .score_only()
//!         .build()
//!         .unwrap(),
//! );
//! let network = Network::generate(engine.knowledge().clone(), 7);
//!
//! // Clean warm-up traffic calibrates a CUSUM detector at a false-alarm
//! // target, then an attack starts at round 10.
//! let nodes: Vec<_> = (0..24u32).map(lad_net::NodeId).collect();
//! let clean = TrafficModel::clean(&network, &engine, nodes.clone(), 99);
//! let streams = clean.score_streams(&network, &engine, MetricKind::Diff, 0..20);
//! let detector = SequentialDetector::calibrate_cusum(
//!     streams.iter().map(Vec::as_slice),
//!     0.01,
//! );
//!
//! let runtime = ServeRuntime::start(
//!     engine.clone(),
//!     ServeConfig::new(MetricKind::Diff, detector).with_shards(2),
//! )
//! .unwrap();
//! let traffic = clean.with_attack(
//!     AttackTimeline::Onset { at: 10 },
//!     AttackConfig {
//!         degree_of_damage: 140.0,
//!         compromised_fraction: 0.2,
//!         class: AttackClass::DecBounded,
//!         targeted_metric: MetricKind::Diff,
//!     },
//!     0.5,
//! );
//! for round in 0..20 {
//!     runtime.submit_batch(round, traffic.round(&network, round));
//! }
//! let report = runtime.shutdown();
//! assert!(report.alarms.iter().any(|a| a.round >= 10), "attack detected");
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod drift;
pub mod export;
pub mod runtime;
pub mod snapshot;
pub mod traffic;

pub use drift::{DriftBaseline, DriftMonitorConfig, DriftSnapshot, DRIFT_BASELINE_VERSION};
pub use export::render_prometheus;
pub use runtime::{
    shard_of, Alarm, ResponseFilter, ServeConfig, ServeCounters, ServeRuntime, ServeStats,
    ShutdownReport, STATS_VERSION,
};
pub use snapshot::{
    engine_fingerprint, NodeDetectorState, ServeError, ServeSnapshot, SNAPSHOT_VERSION,
};
pub use traffic::{AttackTimeline, TrafficModel};
