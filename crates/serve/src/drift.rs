//! The score-drift monitor: is live clean traffic still the distribution
//! the detector was calibrated on?
//!
//! Every sequential threshold in this system is calibrated against a
//! *clean-score substrate* — the empirical distribution of scores the
//! engine assigns to honest traffic. The calibrated false-alarm guarantee
//! is a statement about that substrate, and it silently dies when the
//! substrate moves (measurement noise changed, the σ assumed at engine
//! build no longer matches reality, the node population shifted). The
//! drift monitor watches for exactly that failure mode:
//!
//! * at calibration time, the clean score streams are captured into a
//!   versioned [`DriftBaseline`] artifact (same `version`-dispatch
//!   pattern as [`ServeSnapshot`](crate::ServeSnapshot): a reader meeting
//!   a future version fails with a typed
//!   [`ServeError::UnsupportedVersion`]);
//! * at serve time, every shard feeds the scores of its **non-alarming**
//!   rounds into a bounded `ScoreAccumulator` (alarming rounds are
//!   excluded — an attack is supposed to shift scores, and must not
//!   poison the drift estimate into "recalibrate" when the right answer
//!   is "respond");
//! * on demand, the per-shard accumulators are folded in shard order and
//!   compared against the baseline with
//!   [`streaming_ks`], and the observed alarm
//!   rate is checked against the calibrated target's tolerance band.
//!
//! The verdict is **derived state only**: nothing in the scoring or
//! decision path reads it, so enabling the monitor cannot change a single
//! alarm bit (`tests/serve_determinism.rs` asserts this across shard
//! counts).

use crate::snapshot::ServeError;
use lad_core::MetricKind;
use lad_stats::streaming::{AccumulatorConfig, ScoreAccumulator};
use lad_stats::streaming_ks;
use serde::{Deserialize, Serialize};

/// The baseline artifact version this build writes and reads.
pub const DRIFT_BASELINE_VERSION: u32 = 1;

/// The calibration-time snapshot of the clean-score substrate, plus the
/// false-alarm target the detector was tuned to. Serialized alongside the
/// engine/detector artifacts; versioned so a reader can fail loudly on a
/// format from the future instead of mis-parsing it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftBaseline {
    /// Artifact format version (see [`DRIFT_BASELINE_VERSION`]).
    pub version: u32,
    /// The engine metric the scores belong to. Checked against the serve
    /// configuration at startup: a Diff baseline says nothing about Rank
    /// scores.
    pub metric: MetricKind,
    /// The per-report false-alarm rate the detector was calibrated to.
    pub target_far: f64,
    /// The clean-score distribution itself (exact until the accumulator's
    /// `exact_limit`, then a fixed log-domain histogram — mergeable and
    /// KS-comparable either way).
    pub scores: ScoreAccumulator,
}

impl DriftBaseline {
    /// Captures a baseline from calibration score streams (the same
    /// streams handed to `SequentialDetector::calibrate_*`).
    pub fn capture<'a, I>(metric: MetricKind, target_far: f64, streams: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut scores = ScoreAccumulator::new(AccumulatorConfig::default());
        for stream in streams {
            scores.extend(stream.iter().copied());
        }
        DriftBaseline {
            version: DRIFT_BASELINE_VERSION,
            metric,
            target_far,
            scores,
        }
    }

    /// The accumulator layout live clean scores must be collected under so
    /// the KS comparison is exact in binned mode.
    pub fn accumulator_config(&self) -> AccumulatorConfig {
        *self.scores.config()
    }

    /// Serializes the baseline (always writes [`DRIFT_BASELINE_VERSION`]).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("baseline serializes")
    }

    /// Restores a baseline from [`Self::to_json`] output. Any `version`
    /// other than [`DRIFT_BASELINE_VERSION`] fails with the typed
    /// [`ServeError::UnsupportedVersion`].
    pub fn from_json(json: &str) -> Result<Self, ServeError> {
        let value = serde_json::parse_value(json).map_err(|e| ServeError::Parse(e.to_string()))?;
        let found = value
            .get("version")
            .ok_or_else(|| ServeError::Parse("not a drift baseline (no `version` field)".into()))?
            .as_u64()
            .ok_or_else(|| ServeError::Parse("`version` must be an integer".into()))?;
        if found != DRIFT_BASELINE_VERSION as u64 {
            return Err(ServeError::UnsupportedVersion { found });
        }
        serde_json::from_value(&value).map_err(|e| ServeError::Parse(e.to_string()))
    }
}

/// Configuration of the online drift monitor, attached to a
/// [`ServeConfig`](crate::ServeConfig) via
/// [`with_drift_monitor`](crate::ServeConfig::with_drift_monitor).
#[derive(Debug, Clone)]
pub struct DriftMonitorConfig {
    /// The calibration baseline to compare live clean scores against.
    pub baseline: DriftBaseline,
    /// KS distance above which the substrate is declared drifted. Pick it
    /// above the self-distance noise floor of clean-vs-clean resampling
    /// (see the README's calibration guidance); the drift proptests run a
    /// clean self-substrate at the configured tolerance and assert zero
    /// flags.
    pub ks_tolerance: f64,
    /// Half-width of the acceptance band around `baseline.target_far` for
    /// the observed alarms-per-report rate (two-sided: suspiciously quiet
    /// flags too).
    pub far_band: f64,
    /// Minimum clean scores accumulated before a KS verdict is rendered —
    /// below this the monitor reports "no verdict" rather than judging
    /// from noise.
    pub min_samples: u64,
}

impl DriftMonitorConfig {
    /// A monitor over `baseline` at `ks_tolerance`, with the FAR band
    /// defaulting to the target itself (i.e. alarm rates in
    /// `[0, 2·target]` pass) and a 256-sample minimum.
    pub fn new(baseline: DriftBaseline, ks_tolerance: f64) -> Self {
        let far_band = baseline.target_far;
        DriftMonitorConfig {
            baseline,
            ks_tolerance,
            far_band,
            min_samples: 256,
        }
    }

    /// Overrides the FAR acceptance half-width.
    pub fn with_far_band(mut self, far_band: f64) -> Self {
        self.far_band = far_band;
        self
    }

    /// Overrides the minimum clean-sample count for a KS verdict.
    pub fn with_min_samples(mut self, min_samples: u64) -> Self {
        self.min_samples = min_samples;
        self
    }

    /// Renders a verdict from the folded live accumulator and the observed
    /// alarm rate. Pure; `evaluations`/`flagged` continue from `prev` so
    /// the snapshot records how often the monitor has fired over the
    /// runtime's life.
    pub fn evaluate(
        &self,
        clean: &ScoreAccumulator,
        observed_far: f64,
        prev: &DriftSnapshot,
    ) -> DriftSnapshot {
        let enough = clean.count() >= self.min_samples;
        let ks = if enough {
            streaming_ks(&self.baseline.scores, clean)
        } else {
            0.0
        };
        let drifting = enough && ks > self.ks_tolerance;
        let far_out_of_band =
            enough && (observed_far - self.baseline.target_far).abs() > self.far_band;
        DriftSnapshot {
            enabled: true,
            clean_scores: clean.count(),
            ks,
            ks_tolerance: self.ks_tolerance,
            drifting,
            observed_far,
            target_far: self.baseline.target_far,
            far_band: self.far_band,
            far_out_of_band,
            evaluations: prev.evaluations + u64::from(enough),
            flagged: prev.flagged + u64::from(drifting || far_out_of_band),
        }
    }
}

/// The exported drift verdict, embedded in
/// [`ServeStats`](crate::ServeStats). All derived state: consumed by
/// operators and the health model, never by the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftSnapshot {
    /// Whether a monitor is configured at all. When `false` every other
    /// field is zero.
    pub enabled: bool,
    /// Clean (non-alarming) scores accumulated across all shards.
    pub clean_scores: u64,
    /// KS distance between live clean scores and the baseline (0 until
    /// `min_samples` clean scores have accumulated).
    pub ks: f64,
    /// The configured tolerance the KS distance is judged against.
    pub ks_tolerance: f64,
    /// `ks > ks_tolerance` at the latest evaluation.
    pub drifting: bool,
    /// Observed alarms-per-processed-report at the latest evaluation.
    pub observed_far: f64,
    /// The calibrated false-alarm target from the baseline.
    pub target_far: f64,
    /// Acceptance half-width around the target.
    pub far_band: f64,
    /// `|observed_far − target_far| > far_band` at the latest evaluation.
    pub far_out_of_band: bool,
    /// Evaluations that had enough samples to render a KS verdict.
    pub evaluations: u64,
    /// Evaluations that flagged (KS or FAR) over the runtime's life.
    pub flagged: u64,
}

impl DriftSnapshot {
    /// The snapshot exported when no monitor is configured.
    pub fn disabled() -> Self {
        DriftSnapshot {
            enabled: false,
            clean_scores: 0,
            ks: 0.0,
            ks_tolerance: 0.0,
            drifting: false,
            observed_far: 0.0,
            target_far: 0.0,
            far_band: 0.0,
            far_out_of_band: false,
            evaluations: 0,
            flagged: 0,
        }
    }

    /// Whether the latest evaluation flagged on either axis.
    pub fn flagging(&self) -> bool {
        self.drifting || self.far_out_of_band
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_from(scores: &[f64]) -> DriftBaseline {
        DriftBaseline::capture(MetricKind::Diff, 0.01, [scores])
    }

    #[test]
    fn baseline_round_trips_and_rejects_future_versions() {
        let scores: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.37).sin().abs() * 40.0)
            .collect();
        let baseline = baseline_from(&scores);
        assert_eq!(baseline.version, DRIFT_BASELINE_VERSION);
        assert_eq!(baseline.scores.count(), 500);

        let back = DriftBaseline::from_json(&baseline.to_json()).expect("round trip");
        assert_eq!(back, baseline);

        let future = baseline.to_json().replacen(
            &format!("\"version\":{DRIFT_BASELINE_VERSION}"),
            "\"version\":9",
            1,
        );
        assert_eq!(
            DriftBaseline::from_json(&future),
            Err(ServeError::UnsupportedVersion { found: 9 })
        );
        assert!(matches!(
            DriftBaseline::from_json("{}"),
            Err(ServeError::Parse(_))
        ));
    }

    #[test]
    fn self_substrate_does_not_flag_but_a_shift_does() {
        let clean: Vec<f64> = (0..2000)
            .map(|i| (i as f64 * 0.61).sin().abs() * 25.0)
            .collect();
        let baseline = baseline_from(&clean);
        let monitor = DriftMonitorConfig::new(baseline.clone(), 0.05);

        // Live accumulator fed the same substrate: KS ~ 0, in-band FAR.
        let mut live = ScoreAccumulator::new(monitor.baseline.accumulator_config());
        live.extend(clean.iter().copied());
        let verdict = monitor.evaluate(&live, 0.01, &DriftSnapshot::disabled());
        assert!(verdict.enabled);
        assert!(!verdict.flagging(), "self-substrate must not flag");
        assert_eq!(verdict.evaluations, 1);
        assert_eq!(verdict.flagged, 0);

        // A scale shift in the live scores is a textbook KS separation.
        let mut shifted = ScoreAccumulator::new(monitor.baseline.accumulator_config());
        shifted.extend(clean.iter().map(|s| s * 2.0));
        let verdict = monitor.evaluate(&shifted, 0.01, &verdict);
        assert!(
            verdict.drifting,
            "2x scale shift must flag (ks={})",
            verdict.ks
        );
        assert_eq!(verdict.flagged, 1);
    }

    #[test]
    fn far_band_is_two_sided_and_sample_gated() {
        let clean: Vec<f64> = (0..1000).map(|i| i as f64 % 17.0).collect();
        let monitor = DriftMonitorConfig::new(baseline_from(&clean), 0.1).with_far_band(0.005);

        let mut live = ScoreAccumulator::new(monitor.baseline.accumulator_config());
        live.extend(clean.iter().copied());
        let hot = monitor.evaluate(&live, 0.05, &DriftSnapshot::disabled());
        assert!(hot.far_out_of_band);
        let cold = monitor.evaluate(&live, 0.0, &DriftSnapshot::disabled());
        assert!(cold.far_out_of_band, "suspiciously quiet flags too");
        let in_band = monitor.evaluate(&live, 0.012, &DriftSnapshot::disabled());
        assert!(!in_band.far_out_of_band);

        // Below min_samples: no verdict on either axis, evaluation not
        // counted.
        let sparse = ScoreAccumulator::new(monitor.baseline.accumulator_config());
        let verdict = monitor.evaluate(&sparse, 1.0, &DriftSnapshot::disabled());
        assert!(!verdict.flagging());
        assert_eq!(verdict.evaluations, 0);
    }
}
