//! The sharded online runtime: batched ingestion, per-node sequential
//! decisions, alarms, counters, snapshots.
//!
//! # Architecture
//!
//! [`ServeRuntime::start`] spawns `shards` worker threads, each owning
//!
//! * a bounded ingest queue (`std::sync::mpsc::sync_channel`, capacity
//!   [`ServeConfig::queue_depth`] batches — a full queue blocks
//!   [`ServeRuntime::submit_batch`], which is the backpressure story:
//!   ingestion can never outrun detection by more than the configured
//!   number of in-flight batches per shard),
//! * the per-node [`SequentialState`] map of its node partition, and
//! * a clone of the shared [`LadEngine`].
//!
//! [`ServeRuntime::submit_rows`] partitions a round's reports — flat CSR
//! [`ObservationBatch`] rows, no per-report heap objects — by [`shard_of`]
//! (a pure hash of the node id: no coordination, no rebalancing) and hands
//! each shard its partition. The shard scores its partition with the
//! engine's sequential sparse kernel ([`LadEngine::score_rows_seq_into`])
//! **on its own thread** — scoring work scales with the shard count
//! instead of funnelling through a central pool — then folds each score
//! into the node's detector state and emits an [`Alarm`] whenever the rule
//! fires. Alarm *sets* are therefore bit-deterministic in the shard count;
//! only the interleaving of the alarm stream varies.
//!
//! [`SequentialState`]: lad_stats::SequentialState

use crate::drift::{DriftMonitorConfig, DriftSnapshot};
use crate::snapshot::{NodeDetectorState, ServeError, ServeSnapshot, SNAPSHOT_VERSION};
use lad_core::engine::{DetectionRequest, LadEngine};
use lad_core::MetricKind;
use lad_deployment::MuCache;
use lad_geometry::{Circle, Point2};
use lad_net::{NodeId, ObservationBatch};
use lad_stats::seeds::splitmix64;
use lad_stats::streaming::AccumulatorConfig;
use lad_stats::{ScoreAccumulator, SequentialDetector, SequentialState};
use lad_telemetry::{
    CumulativeSample, EventKind, HealthInputs, HealthReport, SeriesConfig, SeriesRing,
    SeriesSnapshot, Stage, Telemetry, TelemetrySnapshot,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Deterministic node → shard assignment: a pure SplitMix64 hash of the
/// node id, so the partition is stable across runs, machines and restarts
/// (snapshots restored into a runtime with a different shard count land on
/// the right shards automatically).
pub fn shard_of(node: NodeId, shards: usize) -> usize {
    (splitmix64(node.0 as u64) % shards as u64) as usize
}

/// Configuration of a [`ServeRuntime`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of worker shards (≥ 1).
    pub shards: usize,
    /// Bounded ingest-queue capacity per shard, in batches (≥ 1). A full
    /// queue blocks `submit_batch` — backpressure instead of unbounded
    /// buffering.
    pub queue_depth: usize,
    /// The engine metric whose score drives the sequential decision.
    pub metric: MetricKind,
    /// The sequential decision rule every node runs.
    pub detector: SequentialDetector,
    /// Reset a node's state after it alarms (so a persistent anomaly
    /// re-alarms at the detector's cadence instead of every round, and a
    /// cleaned node starts fresh). Defaults to `true`.
    pub reset_on_alarm: bool,
    /// Capacity (in estimates) of each shard's µ-memoization cache
    /// ([`MuCache`]); `0` disables caching. The cache is derived state —
    /// per shard, never serialized, rebuilt empty on start/restore — and
    /// scores are bit-identical at any capacity (exact estimate-bit keys),
    /// so this knob trades memory for hit rate only. Defaults to 16384:
    /// at half that, a working set of 4096 distinct estimates already
    /// loses ~10% of lookups to 4-way set-conflict evictions (mean set
    /// load 2 ⇒ ~5% of sets oversubscribed); doubling the sets drops the
    /// conflict rate below 1% for a few MiB per shard.
    pub mu_cache_capacity: usize,
    /// Record stage latencies, queue gauges and structured events into the
    /// runtime's [`Telemetry`] registry. Telemetry is *derived* state:
    /// never serialized into [`ServeSnapshot`], never consulted by any
    /// decision, so alarms and detector states are bit-identical with it
    /// on or off (the determinism suites run with it on, the default).
    /// Turning it off removes even the timestamp reads from the hot path —
    /// the bench asserts the on/off throughput ratio stays under 10%.
    pub telemetry: bool,
    /// Optional online score-drift monitor (see [`DriftMonitorConfig`]).
    /// When set, each shard accumulates its **non-alarming** scores into a
    /// bounded `ScoreAccumulator` and [`ServeRuntime::refresh_drift`]
    /// compares the fold against the calibration baseline. Derived state
    /// only — the verdict is never consulted by any decision, so alarms
    /// are bit-identical with the monitor on or off (asserted by
    /// `tests/serve_determinism.rs`). Defaults to `None`.
    pub monitor: Option<DriftMonitorConfig>,
    /// Duration of one windowed-series interval in nanoseconds: each
    /// [`ServeRuntime::stats`] call observes the cumulative counters, and
    /// once at least this much time has passed since the last window
    /// closed, the delta becomes one [`lad_telemetry::WindowSample`].
    /// `0` closes a window on **every** stats call (deterministic
    /// round-driven tests and tours). Defaults to one second.
    pub stats_window_nanos: u64,
    /// Retained window count of the series ring (oldest evicted first).
    /// Defaults to 64 — about a minute of history at the default window.
    pub stats_window_capacity: usize,
}

impl ServeConfig {
    /// A single-shard configuration with the given decision metric and
    /// rule (queue depth 4, reset-on-alarm, 16384-estimate µ cache).
    pub fn new(metric: MetricKind, detector: SequentialDetector) -> Self {
        Self {
            shards: 1,
            queue_depth: 4,
            metric,
            detector,
            reset_on_alarm: true,
            mu_cache_capacity: 16384,
            telemetry: true,
            monitor: None,
            stats_window_nanos: SeriesConfig::default().window_nanos,
            stats_window_capacity: SeriesConfig::default().capacity,
        }
    }

    /// Returns a copy with a different shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns a copy with a different per-shard queue depth.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Returns a copy with a different per-shard µ-cache capacity
    /// (`0` disables memoization entirely).
    pub fn with_mu_cache_capacity(mut self, capacity: usize) -> Self {
        self.mu_cache_capacity = capacity;
        self
    }

    /// Returns a copy with telemetry recording on or off.
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Returns a copy with the online drift monitor attached. The
    /// baseline's metric must match the decision metric;
    /// [`ServeRuntime::start`] rejects a mismatch.
    pub fn with_drift_monitor(mut self, monitor: DriftMonitorConfig) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Returns a copy with a different series window duration and retained
    /// window count (`window_nanos == 0` closes a window on every stats
    /// call).
    pub fn with_stats_window(mut self, window_nanos: u64, capacity: usize) -> Self {
        self.stats_window_nanos = window_nanos;
        self.stats_window_capacity = capacity;
        self
    }

    /// Returns a copy that keeps detector state across alarms.
    pub fn keep_state_on_alarm(mut self) -> Self {
        self.reset_on_alarm = false;
        self
    }
}

/// One fired detection: the node, the round it fired in, the raw per-round
/// score, the decision statistic that crossed the threshold, and the
/// location the report *claimed* — the spatial anchor the response layer
/// (`lad_response`) clusters alarms by to separate localized attack foci
/// from diffuse false alarms.
///
/// Serializable: undrained alarms ride through the v2 snapshot path
/// ([`ServeSnapshot::pending_alarms`](crate::ServeSnapshot)) so a restart
/// cannot silently lose fired-but-undrained alarms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// The node the rule fired for.
    pub node: NodeId,
    /// The round whose report fired it.
    pub round: u64,
    /// The round's raw anomaly score (the configured metric).
    pub score: f64,
    /// The decision statistic at firing time (CUSUM sum / EWMA value /
    /// window count).
    pub statistic: f64,
    /// The location estimate the firing report claimed (`L_e`).
    pub estimate: Point2,
}

/// The serve-side view of a revocation decision set: which nodes are
/// revoked and which regions are quarantined. Reports from revoked nodes —
/// and reports *claiming* a position inside a quarantined region — are
/// suppressed in [`ServeRuntime::submit_rows`] **before** they reach a
/// shard, so quarantined work never touches the scoring hot path.
///
/// This type is deliberately policy-free: the response layer
/// (`lad_response`) decides *what* to revoke and compiles its versioned
/// `RevocationList` down to this flat filter; the runtime only enforces it.
/// Suppression happens on the submitting thread with a pure function of
/// `(node, estimate)`, so alarm and revocation decisions stay
/// bit-deterministic in the shard count.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResponseFilter {
    /// Monotone revision counter of the producing revocation list (0 for
    /// the empty filter a runtime starts with).
    pub revision: u64,
    /// Revoked node ids, ascending (binary-searched per report).
    pub revoked: Vec<u32>,
    /// Quarantined regions (linearly scanned per report; policies keep
    /// this list short by merging overlapping foci).
    pub quarantined: Vec<Circle>,
    /// Watched node ids, ascending: nodes with alarm history whose
    /// *suppressed* claims into a quarantined region count toward that
    /// region's suppression telemetry ([`ServeRuntime::region_suppression`]).
    /// Suppression hides in-region alarms by construction, so "the region
    /// went quiet" must be judged on suppressed attempts by previously
    /// suspicious nodes — an honest resident's suppressed reports do not
    /// keep its region quarantined forever.
    pub watched: Vec<u32>,
}

impl ResponseFilter {
    /// Builds a filter, sorting and deduplicating the revoked ids.
    pub fn new(revision: u64, mut revoked: Vec<u32>, quarantined: Vec<Circle>) -> Self {
        revoked.sort_unstable();
        revoked.dedup();
        Self {
            revision,
            revoked,
            quarantined,
            watched: Vec::new(),
        }
    }

    /// Returns a copy with the watched node set (sorted, deduplicated).
    pub fn with_watched(mut self, mut watched: Vec<u32>) -> Self {
        watched.sort_unstable();
        watched.dedup();
        self.watched = watched;
        self
    }

    /// Whether the filter suppresses nothing (the hot path's fast bail).
    pub fn is_empty(&self) -> bool {
        self.revoked.is_empty() && self.quarantined.is_empty()
    }

    /// Whether a report from `node` claiming `estimate` is suppressed.
    #[inline]
    pub fn suppresses(&self, node: NodeId, estimate: Point2) -> bool {
        self.revoked.binary_search(&node.0).is_ok()
            || self.quarantined.iter().any(|c| c.contains(estimate))
    }

    /// The index of the first quarantined region containing `estimate`.
    #[inline]
    pub fn suppressing_region(&self, estimate: Point2) -> Option<usize> {
        self.quarantined.iter().position(|c| c.contains(estimate))
    }

    /// Whether `node`'s suppressed claims count toward region telemetry.
    #[inline]
    pub fn is_watched(&self, node: NodeId) -> bool {
        self.watched.binary_search(&node.0).is_ok()
    }
}

/// The installed filter plus its per-region suppression counters (one per
/// quarantined circle, same order) — swapped together so the counters
/// always describe the circles of the filter they were created with.
struct FilterState {
    filter: Arc<ResponseFilter>,
    region_hits: Arc<Vec<AtomicU64>>,
}

/// A point-in-time snapshot of the runtime's counters — the single
/// coherent view telemetry pollers read (and serialise: the struct is
/// serde-round-trippable, so an operator endpoint can ship it as JSON)
/// instead of racing the individual atomics one read at a time.
///
/// Coherence guarantee: within one snapshot, `processed ≤ submitted`
/// always holds ([`Self::queue_depth`] never underflows and never
/// fabricates phantom backlog from a torn read) — [`ServeRuntime::counters`]
/// loads the counters in an order that preserves the invariant even while
/// submitters and shards are running. The remaining fields are each exact
/// at some instant during the call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServeCounters {
    /// Reports accepted into the scoring pipeline so far (full or
    /// degraded; shed and suppressed reports are not counted here).
    pub submitted: u64,
    /// Reports fully processed (scored + decided) by the shards.
    pub processed: u64,
    /// Alarms raised.
    pub alarms: u64,
    /// Batches submitted.
    pub batches: u64,
    /// Highest round number submitted.
    pub last_round: u64,
    /// Reports suppressed by the installed [`ResponseFilter`] (revoked
    /// node or quarantined claimed region) before reaching a shard. Not
    /// counted in `submitted`.
    pub suppressed: u64,
    /// Reports accepted in **degraded** mode
    /// ([`ServeRuntime::submit_rows_degraded`]): scored with the decision
    /// metric's cheap kernel only. Counted in `submitted` too — this field
    /// tells how much of the accepted traffic paid the reduced price.
    pub degraded: u64,
    /// Reports shed at the ingest boundary (rate-limited or overloaded —
    /// NACKed back to the client, never queued). Recorded via
    /// [`ServeRuntime::record_shed`]; not counted in `submitted`.
    pub shed: u64,
    /// Wire frames that failed to decode (truncated, bad checksum, bad
    /// version, invalid CSR payload). Recorded via
    /// [`ServeRuntime::record_decode_error`].
    pub decode_errors: u64,
    /// µ-memoization cache hits across all shards: reports whose estimate's
    /// `SparseMu` was served from the shard's [`MuCache`] instead of being
    /// re-derived. Always 0 when [`ServeConfig::mu_cache_capacity`] is 0.
    pub mu_cache_hits: u64,
    /// µ-memoization cache misses across all shards (each paid one
    /// `expected_sparse_into` fill). `hits / (hits + misses)` is the cache
    /// hit rate; hits + misses equals the cached-path report count.
    pub mu_cache_misses: u64,
}

impl ServeCounters {
    /// Reports currently sitting in shard queues (submitted − processed).
    ///
    /// **Advisory, not a barrier**: the difference of two monotone counters
    /// read at slightly different instants. It never underflows and never
    /// fabricates phantom backlog (see [`ServeRuntime::counters`]), but it
    /// can overestimate a queue that drained mid-read, and it says nothing
    /// about *which* shard the backlog sits on. For fold-time per-shard
    /// depth and batch age, read the telemetry gauges
    /// ([`TelemetrySnapshot::shard_queue_depth`] via
    /// [`ServeRuntime::stats`]); to actually wait for the pipeline to
    /// empty, use [`ServeRuntime::sync`].
    pub fn queue_depth(&self) -> u64 {
        self.submitted.saturating_sub(self.processed)
    }

    /// µ-memoization hit rate, `hits / (hits + misses)`, as a fraction in
    /// `[0, 1]`. Returns 0.0 when no lookup has happened (cache disabled
    /// or nothing processed yet) rather than dividing by zero.
    pub fn mu_cache_hit_rate(&self) -> f64 {
        let lookups = self.mu_cache_hits + self.mu_cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.mu_cache_hits as f64 / lookups as f64
        }
    }
}

#[derive(Default)]
struct SharedCounters {
    submitted: AtomicU64,
    processed: AtomicU64,
    alarms: AtomicU64,
    batches: AtomicU64,
    last_round: AtomicU64,
    suppressed: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    decode_errors: AtomicU64,
    mu_cache_hits: AtomicU64,
    mu_cache_misses: AtomicU64,
}

impl SharedCounters {
    fn load(&self) -> ServeCounters {
        // `processed` is loaded *before* `submitted`: a report is only ever
        // processed after it was submitted and both counters are monotone,
        // so processed_read ≤ processed_now ≤ submitted_now ≤ submitted_read
        // — the snapshot's queue_depth can overestimate a draining queue by
        // the reports that landed mid-call, but never underflow.
        let processed = self.processed.load(Ordering::Acquire);
        ServeCounters {
            processed,
            alarms: self.alarms.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            last_round: self.last_round.load(Ordering::Relaxed),
            suppressed: self.suppressed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            mu_cache_hits: self.mu_cache_hits.load(Ordering::Relaxed),
            mu_cache_misses: self.mu_cache_misses.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Acquire),
        }
    }
}

enum ShardMsg {
    /// One round's partition for this shard: the nodes (in partition order)
    /// and their reports as flat CSR rows — no per-report heap objects
    /// cross the queue.
    Batch {
        round: u64,
        nodes: Vec<NodeId>,
        rows: ObservationBatch,
        /// Score with the decision metric's cheap kernel only (load-shed
        /// degraded mode) instead of the full fused pass. Decisions are
        /// bit-identical either way.
        degraded: bool,
        /// Telemetry enqueue timestamp ([`Telemetry::now_nanos`] at submit
        /// time; 0 when telemetry is off) — the worker derives the
        /// queue-wait span from it. Observability only: never read by any
        /// decision.
        enqueued_nanos: u64,
    },
    /// Barrier: reply once every earlier message has been processed.
    Sync(Sender<()>),
    /// Reply with this shard's states, sorted by node id.
    Snapshot(Sender<Vec<NodeDetectorState>>),
    /// Install these states (restore path).
    Restore(Vec<NodeDetectorState>),
    /// Reply with a copy of this shard's clean-score drift accumulator
    /// (empty when no monitor is configured).
    DriftFold(Sender<ScoreAccumulator>),
}

/// The sharded online detection runtime. See the [module docs](self) for
/// the architecture and `lad_serve`'s crate docs for an end-to-end example.
pub struct ServeRuntime {
    config: ServeConfig,
    engine_fingerprint: u64,
    /// Deployment group count, for building per-shard row batches.
    group_count: usize,
    senders: Vec<SyncSender<ShardMsg>>,
    workers: Vec<JoinHandle<Vec<NodeDetectorState>>>,
    alarm_rx: Mutex<Receiver<Alarm>>,
    /// A sender into the alarm stream the runtime itself holds, for
    /// re-injecting alarms captured non-destructively by [`Self::snapshot`]
    /// and for restoring a v2 snapshot's pending alarms.
    alarm_tx: Sender<Alarm>,
    /// The installed response filter and its per-region suppression
    /// counters (an empty default until the response layer installs one).
    /// Swapped as `Arc`s so `submit_rows` pays one lock + pointer clone
    /// per *batch*, not per report.
    filter: Mutex<FilterState>,
    counters: Arc<SharedCounters>,
    /// Derived-only observability registry (stage histograms, queue
    /// gauges, event ring). Shared with the shard workers; `Arc` so the
    /// wire/response layers can hold it without borrowing the runtime.
    telemetry: Arc<Telemetry>,
    /// The windowed time-series ring, fed by [`Self::stats`]. Stats-path
    /// state only — the scoring hot path never touches this lock.
    series: Mutex<SeriesRing>,
    /// The latest drift verdict, refreshed by [`Self::refresh_drift`] and
    /// read (never computed) by [`Self::stats`], which therefore stays
    /// free of shard round-trips.
    drift: Mutex<DriftSnapshot>,
}

/// Everything a runtime hands back when it shuts down.
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// The final detector state of every tracked node (restorable).
    pub snapshot: ServeSnapshot,
    /// Alarms not yet drained when the runtime stopped.
    pub alarms: Vec<Alarm>,
    /// Final counter values.
    pub counters: ServeCounters,
}

/// The stats-export format version this build writes and reads. Bumped
/// whenever a field changes meaning or shape, so a scraper built against
/// one format fails loudly on another instead of mis-reading it —
/// the same contract as [`ServeSnapshot`]'s and `DriftBaseline`'s
/// versioning.
///
/// Version history:
///
/// * **v1** — counters + telemetry + windowed series + drift verdict +
///   health report (the first versioned format; the pre-versioning export
///   carried counters and telemetry only and no `stats_version` field, so
///   it parses as `Parse`, not as a silent zero-filled v1).
pub const STATS_VERSION: u32 = 1;

/// One coherent observability export of a running [`ServeRuntime`]:
/// counters, the folded telemetry (stage percentiles, queue gauges, recent
/// events), the windowed time-series history, the drift verdict and the
/// derived health report. Produced by [`ServeRuntime::stats`]; shipped as
/// the JSON payload of the wire `Stats` frame and rendered to Prometheus
/// exposition by [`render_prometheus`](crate::render_prometheus). Purely
/// derived — nothing in it feeds back into any decision, and it is not
/// part of [`ServeSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Export format version (see [`STATS_VERSION`]).
    pub stats_version: u32,
    /// The runtime counters, loaded with the usual
    /// `processed ≤ submitted` coherence guarantee.
    pub counters: ServeCounters,
    /// The folded telemetry registries.
    pub telemetry: TelemetrySnapshot,
    /// The retained windowed time-series (throughput, alarm rate,
    /// shed/degrade, stage percentiles per window).
    pub series: SeriesSnapshot,
    /// The latest drift verdict ([`DriftSnapshot::disabled`] when no
    /// monitor is configured).
    pub drift: DriftSnapshot,
    /// The health report derived from all of the above.
    pub health: HealthReport,
}

impl ServeStats {
    /// Serializes to JSON (the wire `Stats` payload). Always writes
    /// [`STATS_VERSION`].
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("serve stats serialize")
    }

    /// Parses the JSON produced by [`to_json`](Self::to_json). A
    /// `stats_version` other than [`STATS_VERSION`] fails with the typed
    /// [`ServeError::UnsupportedVersion`] — never a zero-filled guess.
    pub fn from_json(json: &str) -> Result<Self, ServeError> {
        let value = serde_json::parse_value(json).map_err(|e| ServeError::Parse(e.to_string()))?;
        let found = value
            .get("stats_version")
            .ok_or_else(|| {
                ServeError::Parse("not a stats export (no `stats_version` field)".into())
            })?
            .as_u64()
            .ok_or_else(|| ServeError::Parse("`stats_version` must be an integer".into()))?;
        if found != STATS_VERSION as u64 {
            return Err(ServeError::UnsupportedVersion { found });
        }
        serde_json::from_value(&value).map_err(|e| ServeError::Parse(e.to_string()))
    }
}

impl ServeRuntime {
    /// Starts the runtime: validates the configuration against the engine
    /// and spawns the worker shards.
    pub fn start(engine: Arc<LadEngine>, config: ServeConfig) -> Result<Self, ServeError> {
        if config.shards == 0 {
            return Err(ServeError::InvalidConfig("shards must be ≥ 1".into()));
        }
        if config.queue_depth == 0 {
            return Err(ServeError::InvalidConfig("queue_depth must be ≥ 1".into()));
        }
        let column = engine
            .metric_index(config.metric)
            .ok_or(ServeError::MetricNotConfigured(config.metric))?;
        if let Some(monitor) = &config.monitor {
            if monitor.baseline.metric != config.metric {
                return Err(ServeError::InvalidConfig(format!(
                    "drift baseline was captured on {}, runtime decides on {} — a baseline says \
                     nothing about another metric's score distribution",
                    monitor.baseline.metric.name(),
                    config.metric.name()
                )));
            }
        }

        let counters = Arc::new(SharedCounters::default());
        let telemetry = Arc::new(if config.telemetry {
            Telemetry::new(config.shards)
        } else {
            Telemetry::disabled(config.shards)
        });
        let (alarm_tx, alarm_rx) = mpsc::channel();
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = mpsc::sync_channel(config.queue_depth);
            senders.push(tx);
            let worker = ShardWorker {
                engine: engine.clone(),
                detector: config.detector,
                metric: config.metric,
                column,
                width: engine.metrics().len(),
                reset_on_alarm: config.reset_on_alarm,
                mu_cache_capacity: config.mu_cache_capacity,
                alarm_tx: alarm_tx.clone(),
                counters: counters.clone(),
                shard,
                telemetry: telemetry.clone(),
                drift_acc: config
                    .monitor
                    .as_ref()
                    .map(|m| ScoreAccumulator::new(m.baseline.accumulator_config())),
            };
            workers.push(std::thread::spawn(move || worker.run(rx)));
        }
        let series = Mutex::new(SeriesRing::new(SeriesConfig {
            window_nanos: config.stats_window_nanos,
            capacity: config.stats_window_capacity,
        }));
        Ok(Self {
            config,
            engine_fingerprint: crate::snapshot::engine_fingerprint(&engine),
            group_count: engine.knowledge().group_count(),
            senders,
            workers,
            alarm_rx: Mutex::new(alarm_rx),
            alarm_tx,
            filter: Mutex::new(FilterState {
                filter: Arc::new(ResponseFilter::default()),
                region_hits: Arc::new(Vec::new()),
            }),
            counters,
            telemetry,
            series,
            drift: Mutex::new(DriftSnapshot::disabled()),
        })
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Installs (replaces) the response filter. Subsequent
    /// [`Self::submit_rows`] / [`Self::submit_batch`] calls suppress
    /// reports from revoked nodes and reports claiming a quarantined
    /// position before they reach a shard; in-flight batches are not
    /// re-filtered. Counted in [`ServeCounters::suppressed`]; per-region
    /// suppression telemetry restarts from zero for the new filter.
    pub fn install_response_filter(&self, filter: ResponseFilter) {
        let region_hits = Arc::new(
            (0..filter.quarantined.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
        );
        *self.filter.lock().expect("response filter lock") = FilterState {
            filter: Arc::new(filter),
            region_hits,
        };
    }

    /// The currently installed response filter (the empty default until
    /// [`Self::install_response_filter`] is called).
    pub fn response_filter(&self) -> Arc<ResponseFilter> {
        self.filter
            .lock()
            .expect("response filter lock")
            .filter
            .clone()
    }

    /// Per-region suppression telemetry of the installed filter: its
    /// revision plus, for each of its quarantined circles (same order),
    /// how many reports from **watched** nodes claimed into that region
    /// and were suppressed since the filter was installed. This is how the
    /// response layer tells a region that went genuinely quiet from one
    /// whose attacker keeps transmitting into the void — suppressed
    /// reports never reach scoring, so they can never appear as alarms.
    pub fn region_suppression(&self) -> (u64, Vec<u64>) {
        let state = self.filter.lock().expect("response filter lock");
        (
            state.filter.revision,
            state
                .region_hits
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        )
    }

    /// Submits one round of reports. The batch is partitioned by
    /// [`shard_of`] and handed to the shards; the call blocks while any
    /// destination shard's queue is full (backpressure). Rounds must be
    /// submitted in nondecreasing order for the per-node decision sequences
    /// to be meaningful.
    ///
    /// Convenience wrapper over [`Self::submit_rows`] for callers holding
    /// per-report `DetectionRequest`s; the flat-row entry point avoids the
    /// per-report heap objects entirely.
    pub fn submit_batch(&self, round: u64, batch: Vec<(NodeId, DetectionRequest)>) {
        let group_count = self.group_count;
        let mut nodes = Vec::with_capacity(batch.len());
        let mut rows = ObservationBatch::new(group_count);
        for (node, request) in &batch {
            nodes.push(*node);
            rows.push(&request.observation, request.estimate);
        }
        self.submit_rows(round, &nodes, &rows);
    }

    /// Submits one round of reports as flat CSR rows: `nodes[i]` reported
    /// `rows.row(i)`. Reports suppressed by the installed
    /// [`ResponseFilter`] (revoked node / quarantined claimed position) are
    /// dropped here — on the submitting thread, as a pure function of
    /// `(node, estimate)`, so suppression is bit-deterministic in the shard
    /// count and never costs a shard any scoring work. The surviving rows
    /// are partitioned by [`shard_of`] into per-shard
    /// [`ObservationBatch`]es (flat copies — the only per-call allocations
    /// are the per-shard batch buffers handed over the queues), and the
    /// call blocks while any destination shard's queue is full
    /// (backpressure).
    ///
    /// # Panics
    /// Panics when `nodes.len() != rows.len()`, or when the batch's group
    /// count differs from the engine's deployment (the once-per-batch
    /// boundary check — failing here, with a clear message, instead of on
    /// a shard thread).
    pub fn submit_rows(&self, round: u64, nodes: &[NodeId], rows: &ObservationBatch) {
        self.submit_rows_mode(round, nodes, rows, false);
    }

    /// [`Self::submit_rows`] in **degraded** mode: the shards score the
    /// accepted rows with the decision metric's cheap sparse kernel
    /// ([`LadEngine::score_rows_seq_one_into`]) instead of the full
    /// all-metrics fused pass. Alarm decisions are **bit-identical** to the
    /// full path — the sequential rule only ever consumes the decision
    /// column, and the single-metric kernel reproduces that column bit for
    /// bit — so a load-shed front door can degrade under pressure without
    /// changing what fires. Accepted rows are counted in both
    /// [`ServeCounters::submitted`] and [`ServeCounters::degraded`].
    pub fn submit_rows_degraded(&self, round: u64, nodes: &[NodeId], rows: &ObservationBatch) {
        self.submit_rows_mode(round, nodes, rows, true);
    }

    fn submit_rows_mode(
        &self,
        round: u64,
        nodes: &[NodeId],
        rows: &ObservationBatch,
        degraded: bool,
    ) {
        assert_eq!(
            nodes.len(),
            rows.len(),
            "one node per observation row required"
        );
        assert_eq!(
            rows.group_count(),
            self.group_count,
            "batch/deployment group-count mismatch"
        );
        let shards = self.senders.len();
        let (filter, region_hits) = {
            let state = self.filter.lock().expect("response filter lock");
            (state.filter.clone(), state.region_hits.clone())
        };
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters.last_round.fetch_max(round, Ordering::Relaxed);
        // One enqueue timestamp per submitted round — the workers derive
        // their queue-wait spans from it. 0 (and no counter touch) when
        // telemetry is off, keeping the disabled path timestamp-free.
        let enqueued_nanos = if self.telemetry.enabled() {
            self.telemetry.now_nanos()
        } else {
            0
        };
        // Single-shard fast path: there is nothing to partition, so when no
        // report is suppressed the whole round is handed over as one bulk
        // copy instead of a per-report hash/push loop. The suppression scan
        // applies the exact predicate of the general loop; any suppressed
        // report falls through to it (which also owns the per-region
        // watched-node telemetry).
        if shards == 1
            && (filter.is_empty()
                || !nodes
                    .iter()
                    .enumerate()
                    .any(|(i, &node)| filter.suppresses(node, rows.estimate(i))))
        {
            let accepted = nodes.len() as u64;
            self.counters
                .submitted
                .fetch_add(accepted, Ordering::Release);
            if degraded {
                self.counters
                    .degraded
                    .fetch_add(accepted, Ordering::Relaxed);
            }
            if !nodes.is_empty() {
                if self.telemetry.enabled() {
                    self.telemetry.shard(0).enqueued_batches.add(1);
                }
                self.senders[0]
                    .send(ShardMsg::Batch {
                        round,
                        nodes: nodes.to_vec(),
                        rows: rows.clone(),
                        degraded,
                        enqueued_nanos,
                    })
                    .expect("shard thread alive while runtime exists");
            }
            return;
        }
        let mut shard_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); shards];
        let mut shard_rows: Vec<ObservationBatch> = (0..shards)
            .map(|_| ObservationBatch::new(rows.group_count()))
            .collect();
        let mut suppressed = 0u64;
        for (i, &node) in nodes.iter().enumerate() {
            if !filter.is_empty() {
                if filter.revoked.binary_search(&node.0).is_ok() {
                    suppressed += 1;
                    continue;
                }
                if let Some(region) = filter.suppressing_region(rows.estimate(i)) {
                    if filter.is_watched(node) {
                        region_hits[region].fetch_add(1, Ordering::Relaxed);
                    }
                    suppressed += 1;
                    continue;
                }
            }
            let s = shard_of(node, shards);
            shard_nodes[s].push(node);
            shard_rows[s].push_row(rows, i);
        }
        let accepted = nodes.len() as u64 - suppressed;
        self.counters
            .submitted
            .fetch_add(accepted, Ordering::Release);
        if degraded {
            self.counters
                .degraded
                .fetch_add(accepted, Ordering::Relaxed);
        }
        if suppressed > 0 {
            self.counters
                .suppressed
                .fetch_add(suppressed, Ordering::Relaxed);
        }
        for (shard, (nodes, rows)) in shard_nodes.into_iter().zip(shard_rows).enumerate() {
            if nodes.is_empty() {
                continue;
            }
            if self.telemetry.enabled() {
                self.telemetry.shard(shard).enqueued_batches.add(1);
            }
            self.senders[shard]
                .send(ShardMsg::Batch {
                    round,
                    nodes,
                    rows,
                    degraded,
                    enqueued_nanos,
                })
                .expect("shard thread alive while runtime exists");
        }
    }

    /// Records `reports` shed at the ingest boundary (rate-limited or
    /// overloaded — NACKed, never queued). The wire front door (`lad_wire`)
    /// calls this so shed traffic shows up in [`ServeCounters::shed`] and
    /// the [`ShutdownReport`] next to everything that was accepted.
    pub fn record_shed(&self, reports: u64) {
        self.counters.shed.fetch_add(reports, Ordering::Relaxed);
    }

    /// Records one wire frame that failed to decode (truncated, bad
    /// checksum, bad version, invalid CSR payload) —
    /// [`ServeCounters::decode_errors`] telemetry for the ingest boundary.
    pub fn record_decode_error(&self) {
        self.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// The deployment group count every submitted batch must be over
    /// (from the engine the runtime was started with). The wire decoder
    /// validates frames against this before they can reach
    /// [`Self::submit_rows`].
    pub fn group_count(&self) -> usize {
        self.group_count
    }

    /// Blocks until every report submitted so far has been scored and
    /// decided.
    pub fn sync(&self) {
        let replies: Vec<Receiver<()>> = self
            .senders
            .iter()
            .map(|sender| {
                let (tx, rx) = mpsc::channel();
                sender
                    .send(ShardMsg::Sync(tx))
                    .expect("shard thread alive while runtime exists");
                rx
            })
            .collect();
        for rx in replies {
            rx.recv().expect("shard answers sync barrier");
        }
    }

    /// A consistent snapshot of the runtime counters (does not sync; call
    /// [`Self::sync`] first for quiescent numbers).
    pub fn counters(&self) -> ServeCounters {
        self.counters.load()
    }

    /// The runtime's [`Telemetry`] registry — derived observability state
    /// only. The wire front door and response controller record their
    /// stage spans and events here so one fold covers the whole pipeline.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// One coherent observability export: the counters, a fold of every
    /// telemetry registry (stage percentiles, queue gauges, recent
    /// events), the windowed series, the cached drift verdict, and the
    /// health report derived from all of it. This is the payload the wire
    /// `Stats` frame ships as JSON. The counters are loaded first, so
    /// `counters.submitted ≥ counters.processed` holds within the export
    /// even under load.
    ///
    /// Each call also *feeds* the series ring with one cumulative
    /// observation — a window closes once [`ServeConfig::stats_window_nanos`]
    /// has elapsed since the last close, so the poller's cadence bounds
    /// the window granularity. The drift verdict is the one cached by the
    /// last [`Self::refresh_drift`]; this call never does a shard
    /// round-trip, so a stats poll cannot stall behind a backlogged
    /// scoring queue.
    pub fn stats(&self) -> ServeStats {
        let counters = self.counters();
        let telemetry = self.telemetry.fold();
        let series = {
            let mut ring = self.series.lock().expect("series ring lock");
            ring.observe(CumulativeSample {
                at_nanos: self.telemetry.now_nanos(),
                submitted: counters.submitted,
                processed: counters.processed,
                alarms: counters.alarms,
                shed: counters.shed,
                degraded: counters.degraded,
                suppressed: counters.suppressed,
                mu_cache_hits: counters.mu_cache_hits,
                mu_cache_misses: counters.mu_cache_misses,
                queue_depth: telemetry.queue_depth,
                stages: self.telemetry.stage_histos(),
            });
            ring.snapshot()
        };
        let drift = self.drift.lock().expect("drift verdict lock").clone();
        let health = derive_health(&self.config, &counters, &telemetry, &series, &drift);
        ServeStats {
            stats_version: STATS_VERSION,
            counters,
            telemetry,
            series,
            drift,
            health,
        }
    }

    /// Folds every shard's clean-score accumulator (in shard order — the
    /// fold is exact and order-independent, but determinism on principle)
    /// and re-evaluates the drift monitor against its baseline, caching
    /// the verdict for [`Self::stats`]. Returns
    /// [`DriftSnapshot::disabled`] when no monitor is configured.
    ///
    /// This is the one observability call that does a shard round-trip
    /// (the accumulators live on the worker threads, unshared); call it on
    /// a poll cadence, not per report. Like `sync`, it waits behind
    /// whatever batches are queued.
    pub fn refresh_drift(&self) -> DriftSnapshot {
        let Some(monitor) = &self.config.monitor else {
            return DriftSnapshot::disabled();
        };
        let replies: Vec<Receiver<ScoreAccumulator>> = self
            .senders
            .iter()
            .map(|sender| {
                let (tx, rx) = mpsc::channel();
                sender
                    .send(ShardMsg::DriftFold(tx))
                    .expect("shard thread alive while runtime exists");
                rx
            })
            .collect();
        let mut folded = ScoreAccumulator::new(monitor.baseline.accumulator_config());
        for rx in replies {
            folded.merge(rx.recv().expect("shard answers drift fold"));
        }
        let counters = self.counters();
        let observed_far = if counters.processed == 0 {
            0.0
        } else {
            counters.alarms as f64 / counters.processed as f64
        };
        let mut cached = self.drift.lock().expect("drift verdict lock");
        let verdict = monitor.evaluate(&folded, observed_far, &cached);
        *cached = verdict.clone();
        verdict
    }

    /// Drains every alarm raised by reports submitted so far (syncs first,
    /// so the result covers all submitted rounds).
    ///
    /// The alarm stream is deliberately **unbounded**: a shard must never
    /// stall detection because nobody is reading alarms (a bounded alarm
    /// queue would deadlock ingestion against the bounded shard queues).
    /// The flip side is that a caller who never drains — via this method,
    /// [`Self::poll_alarms`] or [`Self::shutdown`] — accrues memory for
    /// every alarm raised, so long-running operators should drain on a
    /// cadence ([`ServeCounters::alarms`] counts them either way).
    pub fn drain_alarms(&self) -> Vec<Alarm> {
        self.sync();
        self.poll_alarms()
    }

    /// Drains whatever alarms are currently in the output stream without
    /// waiting for in-flight batches.
    pub fn poll_alarms(&self) -> Vec<Alarm> {
        let _span = self.telemetry.span(Stage::Drain);
        let rx = self.alarm_rx.lock().expect("alarm receiver lock");
        let mut out = Vec::new();
        while let Ok(alarm) = rx.try_recv() {
            out.push(alarm);
        }
        out
    }

    /// Takes a consistent, restorable snapshot of every node's detector
    /// state (syncs, then gathers each shard's sorted partition) **and**
    /// every fired-but-undrained alarm — captured non-destructively, so a
    /// later [`Self::drain_alarms`] still returns them. The capture drains
    /// the alarm stream and re-injects it in order; `sync` has quiesced the
    /// shards first, so no freshly fired alarm can interleave (snapshotting
    /// while another thread is still submitting is racy regardless).
    pub fn snapshot(&self) -> ServeSnapshot {
        self.sync();
        let replies: Vec<Receiver<Vec<NodeDetectorState>>> = self
            .senders
            .iter()
            .map(|sender| {
                let (tx, rx) = mpsc::channel();
                sender
                    .send(ShardMsg::Snapshot(tx))
                    .expect("shard thread alive while runtime exists");
                rx
            })
            .collect();
        let mut states = Vec::new();
        for rx in replies {
            states.extend(rx.recv().expect("shard answers snapshot request"));
        }
        states.sort_by_key(|s| s.node);
        let pending = self.poll_alarms();
        for &alarm in &pending {
            self.alarm_tx
                .send(alarm)
                .expect("runtime holds the alarm receiver");
        }
        self.telemetry.event(
            EventKind::Snapshot,
            self.counters.last_round.load(Ordering::Relaxed),
            SNAPSHOT_VERSION as u64,
            states.len() as u64,
            "",
        );
        build_snapshot(
            &self.config,
            self.engine_fingerprint,
            &self.counters(),
            states,
            pending,
        )
    }

    /// Installs the per-node states of `snapshot` into a **fresh** runtime
    /// (one that has not ingested anything yet — restoring over live state
    /// would merge two unrelated traffic histories, so it is rejected) and
    /// resumes the snapshot's ingestion counters (`submitted`/`processed`
    /// pick up from its `requests_ingested`, `last_round` from its
    /// `last_round`), so a later [`Self::snapshot`] stays consistent with
    /// the whole traffic history. The snapshot must have been taken with
    /// the same decision metric and detector; its states are routed by
    /// [`shard_of`], so the shard count may differ from the snapshot-time
    /// runtime's.
    pub fn restore(&self, snapshot: &ServeSnapshot) -> Result<(), ServeError> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(ServeError::UnsupportedVersion {
                found: snapshot.version as u64,
            });
        }
        if self.counters().submitted != 0 {
            return Err(ServeError::SnapshotMismatch(
                "restore requires a fresh runtime (reports have already been ingested)".into(),
            ));
        }
        if snapshot.metric != self.config.metric {
            return Err(ServeError::SnapshotMismatch(format!(
                "snapshot decides on {}, runtime on {}",
                snapshot.metric.name(),
                self.config.metric.name()
            )));
        }
        if snapshot.detector != self.config.detector {
            return Err(ServeError::SnapshotMismatch(
                "snapshot was taken with a different detector".into(),
            ));
        }
        if snapshot.engine_fingerprint != self.engine_fingerprint {
            return Err(ServeError::SnapshotMismatch(
                "snapshot was taken under a different engine (deployment model or thresholds \
                 differ), so its detector states are not comparable"
                    .into(),
            ));
        }
        let shards = self.senders.len();
        let mut partitions: Vec<Vec<NodeDetectorState>> = vec![Vec::new(); shards];
        for state in &snapshot.states {
            partitions[shard_of(NodeId(state.node), shards)].push(*state);
        }
        for (sender, partition) in self.senders.iter().zip(partitions) {
            sender
                .send(ShardMsg::Restore(partition))
                .expect("shard thread alive while runtime exists");
        }
        // Re-inject the snapshot's fired-but-undrained alarms ahead of
        // anything the restored run fires (the runtime is fresh, so the
        // stream is empty), and resume the alarm counter over the whole
        // snapshot history so alarms-per-request stays consistent across
        // the restart.
        for &alarm in &snapshot.pending_alarms {
            self.alarm_tx
                .send(alarm)
                .expect("runtime holds the alarm receiver");
        }
        self.counters
            .alarms
            .fetch_add(snapshot.alarms_raised, Ordering::Relaxed);
        self.counters
            .submitted
            .fetch_add(snapshot.requests_ingested, Ordering::Relaxed);
        self.counters
            .processed
            .fetch_add(snapshot.requests_ingested, Ordering::Relaxed);
        self.counters
            .last_round
            .fetch_max(snapshot.last_round, Ordering::Relaxed);
        self.sync();
        Ok(())
    }

    /// Graceful shutdown: processes everything in flight, stops the shards,
    /// and returns the final snapshot, the undrained alarms and the final
    /// counters.
    pub fn shutdown(self) -> ShutdownReport {
        let ServeRuntime {
            config,
            engine_fingerprint,
            group_count: _,
            senders,
            workers,
            alarm_rx,
            alarm_tx,
            filter: _,
            counters: shared,
            telemetry: _,
            series: _,
            drift: _,
        } = self;
        // Dropping the senders closes the queues; each worker drains what is
        // left and returns its sorted states.
        drop(senders);
        drop(alarm_tx);
        let mut states = Vec::new();
        for worker in workers {
            states.extend(worker.join().expect("shard thread exits cleanly"));
        }
        states.sort_by_key(|s| s.node);
        let counters = shared.load();
        let mut alarms = Vec::new();
        {
            let rx = alarm_rx.lock().expect("alarm receiver lock");
            while let Ok(alarm) = rx.try_recv() {
                alarms.push(alarm);
            }
        }
        ShutdownReport {
            snapshot: build_snapshot(
                &config,
                engine_fingerprint,
                &counters,
                states,
                alarms.clone(),
            ),
            alarms,
            counters,
        }
    }
}

/// The single place a [`lad_telemetry::HealthReport`] is assembled from an
/// export's numbers — a pure function, so the report is reproducible from
/// the exported stats alone and nothing here can feed back into a
/// decision.
///
/// Window-scoped causes (shedding, degraded scoring) read the most recent
/// closed window so they clear once the pressure passes; before any window
/// has closed they fall back to the cumulative counters. Queue backlog is
/// judged in *batches* against the configured total queue capacity (the
/// per-shard fold-time gauges summed vs `shards × queue_depth`). Drift and
/// alarm-rate causes come from the cached drift verdict and only engage
/// once the monitor has actually evaluated.
fn derive_health(
    config: &ServeConfig,
    counters: &ServeCounters,
    telemetry: &TelemetrySnapshot,
    series: &SeriesSnapshot,
    drift: &DriftSnapshot,
) -> HealthReport {
    let (window_shed, window_degraded) = match series.latest() {
        Some(window) => (window.shed, window.degraded),
        None => (counters.shed, counters.degraded),
    };
    let judged = drift.enabled && drift.evaluations > 0;
    HealthReport::derive(&HealthInputs {
        window_shed,
        window_degraded,
        queue_depth: telemetry.queue_depth,
        queue_limit: (config.shards * config.queue_depth) as u64,
        drift: judged.then_some((drift.ks, drift.ks_tolerance)),
        alarm_rate: judged.then_some((drift.observed_far, drift.target_far, drift.far_band)),
    })
}

/// The single place a [`ServeSnapshot`] is assembled from live runtime
/// state — `snapshot()` and `shutdown()` both go through it, so a new
/// snapshot field cannot be populated in one path and forgotten in the
/// other.
fn build_snapshot(
    config: &ServeConfig,
    engine_fingerprint: u64,
    counters: &ServeCounters,
    states: Vec<NodeDetectorState>,
    pending_alarms: Vec<Alarm>,
) -> ServeSnapshot {
    ServeSnapshot {
        version: SNAPSHOT_VERSION,
        metric: config.metric,
        engine_fingerprint,
        detector: config.detector,
        requests_ingested: counters.processed,
        alarms_raised: counters.alarms,
        last_round: counters.last_round,
        states,
        pending_alarms,
    }
}

/// The per-shard worker: scores its partition with the engine's sequential
/// kernel and folds scores into per-node detector state.
struct ShardWorker {
    engine: Arc<LadEngine>,
    detector: SequentialDetector,
    metric: MetricKind,
    column: usize,
    width: usize,
    reset_on_alarm: bool,
    /// Capacity of this shard's µ cache; 0 disables memoization.
    mu_cache_capacity: usize,
    alarm_tx: Sender<Alarm>,
    counters: Arc<SharedCounters>,
    /// This worker's index into the telemetry registry.
    shard: usize,
    telemetry: Arc<Telemetry>,
    /// Clean-score accumulator for the drift monitor (`None` when no
    /// monitor is configured). Fed only by **non-alarming** updates —
    /// derived state, never read by any decision, never serialized.
    drift_acc: Option<ScoreAccumulator>,
}

impl ShardWorker {
    fn run(mut self, rx: Receiver<ShardMsg>) -> Vec<NodeDetectorState> {
        let mut states: HashMap<u32, SequentialState> = HashMap::new();
        let mut scores: Vec<f64> = Vec::new();
        // Batches folded so far, for the fold-time queue-depth gauge.
        let mut folded_batches = 0u64;
        // The shard's µ-memoization cache — derived state, owned by the
        // worker thread, never serialized, rebuilt empty on start/restore.
        // Scores are bit-identical with it on or off (see `MuCache`).
        let mut mu_cache =
            (self.mu_cache_capacity > 0).then(|| MuCache::new(self.mu_cache_capacity));
        while let Ok(msg) = rx.recv() {
            match msg {
                ShardMsg::Batch {
                    round,
                    nodes,
                    rows,
                    degraded,
                    enqueued_nanos,
                } => {
                    folded_batches += 1;
                    if self.telemetry.enabled() {
                        // Queue wait (enqueue → fold) and the fold-time
                        // gauges: depth in batches as the difference of
                        // the submitters' enqueue counter and this
                        // worker's fold count, age of this very batch.
                        let reg = self.telemetry.shard(self.shard);
                        let wait = self.telemetry.now_nanos().saturating_sub(enqueued_nanos);
                        reg.stage(Stage::QueueWait).record(wait);
                        reg.queue_depth
                            .set(reg.enqueued_batches.get().saturating_sub(folded_batches));
                        reg.queue_age_nanos.set(wait);
                    }
                    // Degraded mode keeps only the decision column (same
                    // bits, a fraction of the scoring cost); the full mode
                    // runs the all-metrics fused pass.
                    let (width, column) = if degraded {
                        (1, 0)
                    } else {
                        (self.width, self.column)
                    };
                    scores.clear();
                    scores.resize(rows.len() * width, 0.0);
                    let score_span = self.telemetry.shard_span(self.shard, Stage::Score);
                    match (&mut mu_cache, degraded) {
                        (Some(cache), false) => {
                            self.engine
                                .score_rows_seq_cached_into(&rows, cache, &mut scores);
                        }
                        (Some(cache), true) => {
                            self.engine.score_rows_seq_one_cached_into(
                                &rows,
                                self.metric,
                                cache,
                                &mut scores,
                            );
                        }
                        (None, false) => self.engine.score_rows_seq_into(&rows, &mut scores),
                        (None, true) => {
                            self.engine
                                .score_rows_seq_one_into(&rows, self.metric, &mut scores)
                        }
                    }
                    score_span.stop();
                    if let Some(cache) = &mut mu_cache {
                        // Flush cache telemetry once per batch, not per
                        // report.
                        let (hits, misses) = cache.take_stats();
                        if hits > 0 {
                            self.counters
                                .mu_cache_hits
                                .fetch_add(hits, Ordering::Relaxed);
                        }
                        if misses > 0 {
                            self.counters
                                .mu_cache_misses
                                .fetch_add(misses, Ordering::Relaxed);
                        }
                    }
                    let update_span = self.telemetry.shard_span(self.shard, Stage::DetectorUpdate);
                    for (i, (node, row)) in nodes.iter().zip(scores.chunks_exact(width)).enumerate()
                    {
                        let score = row[column];
                        let state = states
                            .entry(node.0)
                            .or_insert_with(|| self.detector.initial_state());
                        if !self.detector.update(state, score) {
                            // Non-alarming rounds feed the drift monitor:
                            // the clean-score substrate, with attack rounds
                            // excluded so an attack cannot poison the
                            // "recalibrate" verdict.
                            if let Some(acc) = self.drift_acc.as_mut() {
                                acc.add(score);
                            }
                        } else {
                            self.counters.alarms.fetch_add(1, Ordering::Relaxed);
                            self.telemetry.event(
                                EventKind::AlarmFired,
                                round,
                                node.0 as u64,
                                0,
                                "",
                            );
                            let _ = self.alarm_tx.send(Alarm {
                                node: *node,
                                round,
                                score,
                                statistic: self.detector.statistic(state),
                                estimate: rows.estimate(i),
                            });
                            if self.reset_on_alarm {
                                self.detector.reset(state);
                            }
                        }
                    }
                    update_span.stop();
                    // Release pairs with the Acquire loads in
                    // `SharedCounters::load`: a reader that sees these
                    // reports as processed also sees them as submitted.
                    self.counters
                        .processed
                        .fetch_add(rows.len() as u64, Ordering::Release);
                }
                ShardMsg::Sync(reply) => {
                    let _ = reply.send(());
                }
                ShardMsg::Snapshot(reply) => {
                    let _ = reply.send(Self::sorted_states(&states));
                }
                ShardMsg::Restore(partition) => {
                    for entry in partition {
                        states.insert(entry.node, entry.state);
                    }
                }
                ShardMsg::DriftFold(reply) => {
                    let _ =
                        reply.send(self.drift_acc.clone().unwrap_or_else(|| {
                            ScoreAccumulator::new(AccumulatorConfig::default())
                        }));
                }
            }
        }
        Self::sorted_states(&states)
    }

    fn sorted_states(states: &HashMap<u32, SequentialState>) -> Vec<NodeDetectorState> {
        let mut out: Vec<NodeDetectorState> = states
            .iter()
            .map(|(&node, &state)| NodeDetectorState { node, state })
            .collect();
        out.sort_by_key(|s| s.node);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{AttackTimeline, TrafficModel};
    use lad_attack::{AttackClass, AttackConfig};
    use lad_deployment::DeploymentConfig;
    use lad_net::Network;

    fn engine() -> Arc<LadEngine> {
        Arc::new(
            LadEngine::builder()
                .deployment(&DeploymentConfig::small_test())
                .metrics(&MetricKind::ALL)
                .score_only()
                .build()
                .unwrap(),
        )
    }

    fn calibrated(
        model: &TrafficModel,
        network: &Network,
        engine: &LadEngine,
    ) -> SequentialDetector {
        let streams = model.score_streams(network, engine, MetricKind::Diff, 0..12);
        SequentialDetector::calibrate_cusum(streams.iter().map(Vec::as_slice), 0.01)
    }

    fn traffic(engine: &LadEngine, network: &Network) -> (TrafficModel, TrafficModel) {
        let nodes: Vec<NodeId> = (0..48u32).map(|i| NodeId(i * 11)).collect();
        let clean = TrafficModel::clean(network, engine, nodes, 0x5EED);
        let attacked = clean.with_attack(
            AttackTimeline::Onset { at: 6 },
            AttackConfig {
                degree_of_damage: 180.0,
                compromised_fraction: 0.2,
                class: AttackClass::DecBounded,
                targeted_metric: MetricKind::Diff,
            },
            0.5,
        );
        (clean, attacked)
    }

    fn run_rounds(runtime: &ServeRuntime, model: &TrafficModel, network: &Network, rounds: u64) {
        for round in 0..rounds {
            runtime.submit_batch(round, model.round(network, round));
        }
    }

    #[test]
    fn runtime_decisions_match_an_offline_replay() {
        let engine = engine();
        let network = Network::generate(engine.knowledge().clone(), 21);
        let (clean, attacked) = traffic(&engine, &network);
        let detector = calibrated(&clean, &network, &engine);

        let runtime = ServeRuntime::start(
            engine.clone(),
            ServeConfig::new(MetricKind::Diff, detector).with_shards(3),
        )
        .unwrap();
        run_rounds(&runtime, &attacked, &network, 14);
        let mut alarms: Vec<(u32, u64)> = runtime
            .drain_alarms()
            .into_iter()
            .map(|a| (a.node.0, a.round))
            .collect();
        alarms.sort_unstable();

        // Offline replay with the same detector over the same streams.
        let streams = attacked.score_streams(&network, &engine, MetricKind::Diff, 0..14);
        let mut expected: Vec<(u32, u64)> = Vec::new();
        for (node, stream) in attacked.nodes().iter().zip(&streams) {
            let mut state = detector.initial_state();
            for (round, &score) in stream.iter().enumerate() {
                if detector.update(&mut state, score) {
                    expected.push((node.0, round as u64));
                    detector.reset(&mut state);
                }
            }
        }
        expected.sort_unstable();
        assert_eq!(alarms, expected);
        assert!(
            alarms.iter().any(|&(_, round)| round >= 6),
            "the onset attack must be detected"
        );
        assert!(
            alarms.iter().all(|&(_, round)| round < 14),
            "alarm rounds are within the trace"
        );

        let report = runtime.shutdown();
        assert_eq!(report.counters.processed, report.counters.submitted);
        assert_eq!(report.counters.queue_depth(), 0);
        assert_eq!(report.counters.alarms as usize, alarms.len());
        assert_eq!(report.counters.last_round, 13);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let engine = engine();
        let network = Network::generate(engine.knowledge().clone(), 22);
        let (clean, attacked) = traffic(&engine, &network);
        let detector = calibrated(&clean, &network, &engine);
        let config = ServeConfig::new(MetricKind::Diff, detector).with_shards(2);

        // Reference: one uninterrupted run.
        let reference = ServeRuntime::start(engine.clone(), config.clone()).unwrap();
        run_rounds(&reference, &attacked, &network, 12);
        let mut ref_alarms: Vec<(u32, u64)> = reference
            .drain_alarms()
            .into_iter()
            .map(|a| (a.node.0, a.round))
            .collect();
        ref_alarms.sort_unstable();
        let ref_snapshot = reference.shutdown().snapshot;

        // Interrupted: run 7 rounds, snapshot to JSON, restore into a fresh
        // runtime with a *different* shard count, run the rest.
        let first = ServeRuntime::start(engine.clone(), config.clone()).unwrap();
        run_rounds(&first, &attacked, &network, 7);
        let mut alarms: Vec<(u32, u64)> = first
            .drain_alarms()
            .into_iter()
            .map(|a| (a.node.0, a.round))
            .collect();
        let json = first.snapshot().to_json();
        drop(first.shutdown());

        let resumed = ServeSnapshot::from_json(&json).expect("snapshot parses");
        let second = ServeRuntime::start(engine.clone(), config.with_shards(5)).unwrap();
        second.restore(&resumed).expect("snapshot restores");
        for round in 7..12 {
            second.submit_batch(round, attacked.round(&network, round));
        }
        alarms.extend(
            second
                .drain_alarms()
                .into_iter()
                .map(|a| (a.node.0, a.round)),
        );
        alarms.sort_unstable();
        assert_eq!(alarms, ref_alarms, "resumed run raises the same alarms");
        let resumed_snapshot = second.shutdown().snapshot;
        assert_eq!(
            resumed_snapshot.states, ref_snapshot.states,
            "resumed run ends in the same per-node states"
        );
        // restore() resumed the ingestion counters, so snapshot metadata
        // covers the whole traffic history, not just the post-resume part.
        assert_eq!(
            resumed_snapshot.requests_ingested,
            ref_snapshot.requests_ingested
        );
        assert_eq!(resumed_snapshot.last_round, ref_snapshot.last_round);
    }

    #[test]
    fn restore_rejects_mismatched_snapshots() {
        let engine = engine();
        let detector = SequentialDetector::Cusum {
            reference: 1.0,
            threshold: 5.0,
        };
        let runtime =
            ServeRuntime::start(engine.clone(), ServeConfig::new(MetricKind::Diff, detector))
                .unwrap();
        let mut snapshot = runtime.snapshot();
        snapshot.metric = MetricKind::AddAll;
        assert!(matches!(
            runtime.restore(&snapshot),
            Err(ServeError::SnapshotMismatch(_))
        ));
        let mut wrong_version = runtime.snapshot();
        wrong_version.version = 3;
        assert!(matches!(
            runtime.restore(&wrong_version),
            Err(ServeError::UnsupportedVersion { found: 3 })
        ));
        let mut wrong_detector = runtime.snapshot();
        wrong_detector.detector = SequentialDetector::Cusum {
            reference: 2.0,
            threshold: 5.0,
        };
        assert!(matches!(
            runtime.restore(&wrong_detector),
            Err(ServeError::SnapshotMismatch(_))
        ));

        // A snapshot taken under a different engine carries incomparable
        // detector states.
        let mut wrong_engine = runtime.snapshot();
        wrong_engine.engine_fingerprint ^= 1;
        assert!(matches!(
            runtime.restore(&wrong_engine),
            Err(ServeError::SnapshotMismatch(_))
        ));

        // Restoring over live state would merge two traffic histories:
        // rejected once anything has been ingested.
        let valid = runtime.snapshot();
        let obs = lad_net::Observation::zeros(engine.knowledge().group_count());
        runtime.submit_batch(
            0,
            vec![(
                NodeId(0),
                DetectionRequest::new(obs, lad_geometry::Point2::new(100.0, 100.0)),
            )],
        );
        runtime.sync();
        assert!(matches!(
            runtime.restore(&valid),
            Err(ServeError::SnapshotMismatch(_))
        ));
    }

    #[test]
    fn start_rejects_invalid_configurations() {
        let engine = engine();
        let detector = SequentialDetector::Cusum {
            reference: 1.0,
            threshold: 5.0,
        };
        assert!(matches!(
            ServeRuntime::start(
                engine.clone(),
                ServeConfig::new(MetricKind::Diff, detector).with_shards(0)
            ),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            ServeRuntime::start(
                engine.clone(),
                ServeConfig::new(MetricKind::Diff, detector).with_queue_depth(0)
            ),
            Err(ServeError::InvalidConfig(_))
        ));
        let diff_only = Arc::new(
            LadEngine::builder()
                .deployment(&DeploymentConfig::small_test())
                .metric(MetricKind::Diff)
                .score_only()
                .build()
                .unwrap(),
        );
        assert!(matches!(
            ServeRuntime::start(
                diff_only,
                ServeConfig::new(MetricKind::Probability, detector)
            ),
            Err(ServeError::MetricNotConfigured(MetricKind::Probability))
        ));
    }

    #[test]
    fn tiny_queues_still_complete_via_backpressure() {
        let engine = engine();
        let network = Network::generate(engine.knowledge().clone(), 23);
        let (clean, _) = traffic(&engine, &network);
        let detector = calibrated(&clean, &network, &engine);
        let runtime = ServeRuntime::start(
            engine.clone(),
            ServeConfig::new(MetricKind::Diff, detector)
                .with_shards(2)
                .with_queue_depth(1),
        )
        .unwrap();
        run_rounds(&runtime, &clean, &network, 20);
        runtime.sync();
        let counters = runtime.counters();
        assert_eq!(counters.queue_depth(), 0);
        assert_eq!(counters.submitted, 20 * clean.nodes().len() as u64);
        runtime.shutdown();
    }

    #[test]
    fn degraded_mode_decisions_are_bit_identical_and_counted() {
        let engine = engine();
        let network = Network::generate(engine.knowledge().clone(), 24);
        let (clean, attacked) = traffic(&engine, &network);
        let detector = calibrated(&clean, &network, &engine);
        let config = ServeConfig::new(MetricKind::Diff, detector).with_shards(2);

        let alarms_of = |degraded: bool| {
            let runtime = ServeRuntime::start(engine.clone(), config.clone()).unwrap();
            let mut nodes = Vec::new();
            let mut rows = ObservationBatch::new(engine.knowledge().group_count());
            for round in 0..14 {
                nodes.clear();
                rows.reset(engine.knowledge().group_count());
                attacked.round_rows(&network, round, &mut nodes, &mut rows);
                if degraded {
                    runtime.submit_rows_degraded(round, &nodes, &rows);
                } else {
                    runtime.submit_rows(round, &nodes, &rows);
                }
            }
            let mut alarms: Vec<(u32, u64, u64, u64)> = runtime
                .drain_alarms()
                .into_iter()
                .map(|a| (a.node.0, a.round, a.score.to_bits(), a.statistic.to_bits()))
                .collect();
            alarms.sort_unstable();
            (alarms, runtime.shutdown().counters)
        };

        let (full_alarms, full_counters) = alarms_of(false);
        let (deg_alarms, deg_counters) = alarms_of(true);
        assert!(!full_alarms.is_empty(), "the attack must fire");
        assert_eq!(
            full_alarms, deg_alarms,
            "degraded scoring must not change any decision bit"
        );
        assert_eq!(full_counters.degraded, 0);
        assert_eq!(deg_counters.degraded, deg_counters.submitted);
        assert_eq!(deg_counters.submitted, full_counters.submitted);
    }

    #[test]
    fn counters_snapshot_round_trips_through_serde_and_stays_coherent() {
        let engine = engine();
        let detector = SequentialDetector::Cusum {
            reference: 1.0,
            threshold: 5.0,
        };
        let runtime =
            ServeRuntime::start(engine.clone(), ServeConfig::new(MetricKind::Diff, detector))
                .unwrap();
        let obs = lad_net::Observation::zeros(engine.knowledge().group_count());
        runtime.submit_batch(
            0,
            vec![(
                NodeId(7),
                DetectionRequest::new(obs, lad_geometry::Point2::new(100.0, 100.0)),
            )],
        );
        runtime.record_shed(5);
        runtime.record_decode_error();
        runtime.sync();
        let counters = runtime.counters();
        assert_eq!(counters.submitted, 1);
        assert_eq!(counters.shed, 5);
        assert_eq!(counters.decode_errors, 1);
        assert!(counters.processed <= counters.submitted);

        let json = serde_json::to_string(&counters).expect("counters serialise");
        let back: ServeCounters = serde_json::from_str(&json).expect("counters parse");
        assert_eq!(counters, back);
        runtime.shutdown();
    }

    #[test]
    fn shard_assignment_is_stable_and_total() {
        for shards in [1usize, 2, 3, 8] {
            for node in 0..500u32 {
                let s = shard_of(NodeId(node), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(NodeId(node), shards));
            }
        }
        // All shards of an 8-way runtime actually receive nodes.
        let mut seen = [false; 8];
        for node in 0..500u32 {
            seen[shard_of(NodeId(node), 8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
