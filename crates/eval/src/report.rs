//! Figure / table containers with CSV, Markdown and JSON output.
//!
//! Every experiment produces a [`FigureReport`]: a set of named series (one
//! per curve of the corresponding paper figure) plus free-form notes. The
//! `reproduce` binary writes these as CSV (one file per figure) and as a
//! combined Markdown summary that EXPERIMENTS.md is built from.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// One curve of a figure: a label plus `(x, y)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. `"Diff metric, D=120"`).
    pub label: String,
    /// The curve's points, in plotting order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }

    /// The y value at the first point whose x is at least `x` (or the last y).
    pub fn y_at_or_after(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| *px >= x)
            .or(self.points.last())
            .map(|(_, y)| *y)
    }
}

/// A reproduced figure or table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureReport {
    /// Short identifier, e.g. `"fig4"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// The curves of the figure.
    pub series: Vec<Series>,
    /// Free-form notes (parameters, observed headline numbers).
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Adds a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Finds a series by label.
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders the figure as CSV: `series,x,y` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for (x, y) in &s.points {
                let _ = writeln!(out, "{},{x},{y}", csv_escape(&s.label));
            }
        }
        out
    }

    /// Renders the figure as a compact Markdown section (title, notes, and a
    /// per-series table of points).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "*x*: {} · *y*: {}\n", self.x_label, self.y_label);
        for note in &self.notes {
            let _ = writeln!(out, "- {note}");
        }
        if !self.notes.is_empty() {
            out.push('\n');
        }
        for s in &self.series {
            let _ = writeln!(out, "**{}**\n", s.label);
            let _ = writeln!(out, "| {} | {} |", self.x_label, self.y_label);
            let _ = writeln!(out, "|---|---|");
            for (x, y) in &s.points {
                let _ = writeln!(out, "| {x:.4} | {y:.4} |");
            }
            out.push('\n');
        }
        out
    }

    /// Writes `<id>.csv` and `<id>.json` into `dir` (created if needed).
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())?;
        let json = serde_json::to_string_pretty(self).expect("figure serializes");
        fs::write(dir.join(format!("{}.json", self.id)), json)?;
        Ok(())
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> FigureReport {
        let mut r = FigureReport::new("fig_test", "A test figure", "D", "DR");
        r.push_series(Series::new("curve-a", vec![(1.0, 0.5), (2.0, 0.9)]));
        r.push_series(Series::new("curve, b", vec![(1.0, 0.1)]));
        r.push_note("x = 10%");
        r
    }

    #[test]
    fn csv_contains_every_point_and_escapes_commas() {
        let csv = sample_report().to_csv();
        assert!(csv.starts_with("series,x,y\n"));
        assert!(csv.contains("curve-a,1,0.5"));
        assert!(csv.contains("\"curve, b\",1,0.1"));
        assert_eq!(csv.lines().count(), 1 + 3);
    }

    #[test]
    fn markdown_mentions_title_notes_and_series() {
        let md = sample_report().to_markdown();
        assert!(md.contains("fig_test"));
        assert!(md.contains("A test figure"));
        assert!(md.contains("x = 10%"));
        assert!(md.contains("curve-a"));
        assert!(md.contains("| 2.0000 | 0.9000 |"));
    }

    #[test]
    fn save_writes_csv_and_json() {
        let dir = std::env::temp_dir().join("lad-eval-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        sample_report().save(&dir).unwrap();
        assert!(dir.join("fig_test.csv").exists());
        let json = std::fs::read_to_string(dir.join("fig_test.json")).unwrap();
        let parsed: FigureReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, sample_report());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn series_lookup_helpers() {
        let r = sample_report();
        assert!(r.series_by_label("curve-a").is_some());
        assert!(r.series_by_label("missing").is_none());
        let s = r.series_by_label("curve-a").unwrap();
        assert_eq!(s.y_at_or_after(1.5), Some(0.9));
        assert_eq!(s.y_at_or_after(5.0), Some(0.9));
        assert_eq!(s.y_at_or_after(0.0), Some(0.5));
    }
}
