//! Evaluation harness for the LAD reproduction.
//!
//! This crate regenerates every figure of the paper's evaluation (§7) plus
//! the two ablations called out in DESIGN.md:
//!
//! | Experiment | Paper figure | Entry point |
//! |------------|--------------|-------------|
//! | E1 | Fig. 1–2 (deployment layout, placement pdf) | [`experiments::deployment_figures`] |
//! | E2 | Fig. 3 (attack primitives showcase) | [`experiments::attack_showcase`] |
//! | E3 | Fig. 4 (ROC per metric, D ∈ {80, 120, 160}) | [`experiments::fig4_roc_metrics`] |
//! | E4/E5 | Fig. 5–6 (ROC per attack class, D ∈ {40, 80, 120, 160}) | [`experiments::fig56_roc_attacks`] |
//! | E6 | Fig. 7 (DR vs D) | [`experiments::fig7_dr_vs_damage`] |
//! | E7 | Fig. 8 (DR vs compromised fraction) | [`experiments::fig8_dr_vs_compromise`] |
//! | E8 | Fig. 9 (DR vs density m) | [`experiments::fig9_dr_vs_density`] |
//! | E9 | §3.3 lookup-table ablation | [`experiments::ablation_gz_table`] |
//! | E10 | §7.2 scheme-independence ablation | [`experiments::ablation_localizers`] |
//! | E11 | §8 deployment-model-mismatch study (future work) | [`experiments::ablation_model_mismatch`] |
//!
//! The shared machinery lives in [`runner`] (deterministic, Rayon-parallel
//! Monte-Carlo score collection), [`report`] (figure/series containers with
//! CSV and Markdown output) and [`config`] (quick / paper-scale presets).
//! The `reproduce` binary drives everything and writes the artefacts
//! consumed by `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod experiments;
pub mod report;
pub mod runner;

pub use config::EvalConfig;
pub use report::{FigureReport, Series};
pub use runner::{EvalContext, ScoreSet};
