//! Evaluation harness for the LAD reproduction.
//!
//! The harness is built around a **declarative scenario layer**
//! ([`scenario`]): an experiment is a [`ScenarioSpec`] value — deployment
//! axes × attack grid × sampling plan — executed by a [`ScenarioRunner`]
//! that deduplicates per-deployment work (network generation, clean-score
//! collection), fans the whole grid out on one Rayon pool, and streams
//! every score distribution into O(bins)-memory accumulators
//! ([`lad_stats::streaming`]). Every figure of the paper's §7, the two new
//! grid-native scenarios, and the ablations are declared this way:
//!
//! | Experiment | Paper figure | Entry point |
//! |------------|--------------|-------------|
//! | E1 | Fig. 1–2 (deployment layout, placement pdf) | [`experiments::deployment_figures`] |
//! | E2 | Fig. 3 (attack primitives showcase) | [`experiments::attack_showcase`] |
//! | E3 | Fig. 4 (ROC per metric, D ∈ {80, 120, 160}) | [`experiments::fig4_roc_metrics`] |
//! | E4/E5 | Fig. 5–6 (ROC per attack class, D ∈ {40, 80, 120, 160}) | [`experiments::fig56_roc_attacks`] |
//! | E6 | Fig. 7 (DR vs D) | [`experiments::fig7_dr_vs_damage`] |
//! | E7 | Fig. 8 (DR vs compromised fraction) | [`experiments::fig8_dr_vs_compromise`] |
//! | E8 | Fig. 9 (DR vs density m) | [`experiments::fig9_dr_vs_density`] |
//! | E9 | §3.3 lookup-table ablation | [`experiments::ablation_gz_table`] |
//! | E10 | §7.2 scheme-independence ablation | [`experiments::ablation_localizers`] |
//! | E11 | §8 deployment-model-mismatch study | [`experiments::ablation_model_mismatch`] |
//! | E12 | joint D×x detection-rate heatmap (grid-native) | [`experiments::heatmap_damage_compromise`] |
//! | E13 | mixed-attack-class workload (grid-native) | [`experiments::mixed_attack_workload`] |
//! | E14 | temporal: time-to-detection of sequential detectors (serving-native) | [`experiments::temporal_detection`] |
//! | E15 | containment: closed-loop time-to-containment, precision/recall, collateral (response-native) | [`experiments::containment`] |
//!
//! # Define your own scenario
//!
//! A scenario is ~15 lines: declare the grid, run it, query any cell.
//!
//! ```
//! use lad_eval::scenario::{AttackMix, ParamGrid, ScenarioRunner, ScenarioSpec};
//! use lad_eval::EvalConfig;
//! use lad_attack::AttackClass;
//! use lad_core::MetricKind;
//!
//! let base = EvalConfig::bench(); // deployment + sampling preset
//! let spec = ScenarioSpec::new(
//!     "my_sweep",
//!     "Diff-metric detection across damage levels and attack classes",
//!     base.deployment_axis("bench"),
//!     ParamGrid {
//!         metrics: vec![MetricKind::Diff],
//!         attacks: vec![AttackMix::pure(AttackClass::DecBounded),
//!                       AttackMix::pure(AttackClass::DecOnly)],
//!         damages: vec![60.0, 120.0],
//!         fractions: vec![0.1],
//!     },
//!     base.sampling_plan(),
//! );
//! let result = ScenarioRunner::new(&spec).run();
//! let dep = result.single();
//! let cell = dep.find_cell(MetricKind::Diff, "dec-only", 120.0, 0.1).unwrap();
//! assert!(dep.detection_rate(cell, 0.05) > 0.5);
//! ```
//!
//! The shared machinery lives in [`scenario`] (specs, substrates, the
//! grid-parallel runner), [`runner`] (the buffered [`EvalContext`]
//! compatibility layer), [`report`] (figure/series containers with CSV and
//! Markdown output) and [`config`] (quick / paper-scale presets). The
//! `reproduce` binary drives everything and writes the artefacts consumed
//! by `EXPERIMENTS.md`.
//!
//! [`ScenarioSpec`]: scenario::ScenarioSpec
//! [`ScenarioRunner`]: scenario::ScenarioRunner

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod scenario;

pub use config::EvalConfig;
pub use report::{FigureReport, Series};
pub use runner::{EvalContext, ScoreSet};
pub use scenario::{ScenarioRunner, ScenarioSpec, SubstrateCache};
