//! The declarative scenario description: what to sweep, over which
//! deployments, with how many samples.

use lad_attack::AttackClass;
use lad_core::MetricKind;
use lad_deployment::DeploymentConfig;
use lad_stats::seeds::derive_seed;
use lad_stats::AccumulatorConfig;
use serde::{Deserialize, Serialize};

/// How many networks / samples a scenario draws, and from which master seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingPlan {
    /// Independent simulated deployments per deployment axis.
    pub networks: usize,
    /// Clean nodes sampled per network (threshold side of every ROC).
    pub clean_samples_per_network: usize,
    /// Attacked victims sampled per network *per grid cell*.
    pub victims_per_network: usize,
    /// Master seed; every trial seed is derived from it.
    pub seed: u64,
}

impl SamplingPlan {
    /// Total clean samples per deployment axis (before localization drops).
    pub fn total_clean_samples(&self) -> usize {
        self.networks * self.clean_samples_per_network
    }

    /// Total victims per grid cell.
    pub fn total_victims(&self) -> usize {
        self.networks * self.victims_per_network
    }
}

/// Which localization scheme supplies the clean-side estimates `L_e`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalizerChoice {
    /// The paper's beaconless MLE (knowledge + own observation only).
    BeaconlessMle,
    /// Centroid of heard anchor beacons (this many anchors per network).
    Centroid {
        /// Number of randomly placed anchors.
        anchors: usize,
    },
    /// DV-Hop over the same anchor field.
    DvHop {
        /// Number of randomly placed anchors.
        anchors: usize,
    },
}

impl LocalizerChoice {
    /// Human-readable scheme name (used in labels and reports).
    pub fn name(self) -> &'static str {
        match self {
            LocalizerChoice::BeaconlessMle => "beaconless-mle",
            LocalizerChoice::Centroid { .. } => "centroid",
            LocalizerChoice::DvHop { .. } => "dv-hop",
        }
    }
}

/// One deployment point of a scenario: the *assumed* deployment model the
/// detector is provisioned with, the *actual* placement spread (differing
/// only in model-mismatch studies), and the localization scheme producing
/// clean estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentAxis {
    /// Label used in results (e.g. `"m=300"` or `"sigma=65"`).
    pub label: String,
    /// The deployment model the detector assumes (knowledge, µ, scoring).
    pub config: DeploymentConfig,
    /// Actual placement σ when it differs from `config.sigma` (the §8
    /// model-mismatch study); `None` means the model matches reality.
    pub actual_sigma: Option<f64>,
    /// The scheme that localizes clean nodes.
    pub localizer: LocalizerChoice,
}

impl DeploymentAxis {
    /// A matched-model axis with the paper's beaconless MLE.
    pub fn new(label: impl Into<String>, config: DeploymentConfig) -> Self {
        Self {
            label: label.into(),
            config,
            actual_sigma: None,
            localizer: LocalizerChoice::BeaconlessMle,
        }
    }

    /// Returns a copy with a different localization scheme.
    pub fn with_localizer(mut self, localizer: LocalizerChoice) -> Self {
        self.localizer = localizer;
        self
    }

    /// Returns a copy whose *actual* placement spread is `sigma` while the
    /// detector keeps assuming `config.sigma`. A `sigma` equal to the
    /// assumed one is normalised to "no mismatch", so such an axis shares
    /// its cached substrate with plain matched-model axes.
    pub fn with_actual_sigma(mut self, sigma: f64) -> Self {
        self.actual_sigma = (sigma != self.config.sigma).then_some(sigma);
        self
    }

    /// The configuration networks are actually generated from.
    pub fn actual_config(&self) -> DeploymentConfig {
        match self.actual_sigma {
            Some(sigma) => self.config.with_sigma(sigma),
            None => self.config,
        }
    }
}

/// A weighted mixture of attack classes. A pure mix reproduces the paper's
/// single-class sweeps; a weighted mix models an adversary population using
/// different strategies — a workload the per-point harness could not express
/// without duplicating its whole collection loop per class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackMix {
    label: String,
    components: Vec<(AttackClass, u32)>,
}

impl AttackMix {
    /// A single-class mix labelled with the class name.
    pub fn pure(class: AttackClass) -> Self {
        Self {
            label: class.name().to_string(),
            components: vec![(class, 1)],
        }
    }

    /// A weighted mix. Weights are relative integers (e.g. `[(DecBounded,
    /// 1), (DecOnly, 1)]` is a 50/50 split).
    pub fn weighted(label: impl Into<String>, components: Vec<(AttackClass, u32)>) -> Self {
        assert!(!components.is_empty(), "an attack mix needs components");
        assert!(
            components.iter().any(|&(_, w)| w > 0),
            "an attack mix needs positive weight"
        );
        Self {
            label: label.into(),
            components,
        }
    }

    /// The mix's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The weighted components.
    pub fn components(&self) -> &[(AttackClass, u32)] {
        &self.components
    }

    /// Deterministically picks a class from `draw` (a derived-seed value):
    /// victims are assigned classes proportionally to the weights. A pure
    /// mix always returns its class.
    pub fn pick(&self, draw: u64) -> AttackClass {
        let total: u64 = self.components.iter().map(|&(_, w)| w as u64).sum();
        let mut ticket = draw % total;
        for &(class, w) in &self.components {
            if ticket < w as u64 {
                return class;
            }
            ticket -= w as u64;
        }
        self.components[0].0
    }

    /// A content-derived token mixed into attack seeds, so the same cell
    /// produces the same trials in every scenario that contains it
    /// (label changes do not perturb results).
    pub fn seed_token(&self) -> u64 {
        let indices: Vec<u64> = self
            .components
            .iter()
            .flat_map(|&(class, w)| [class as u64, w as u64])
            .collect();
        derive_seed(0x417_ACC, &indices)
    }
}

/// One cell of the expanded grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CellParams {
    /// The detection metric evaluated (and targeted by the adversary).
    pub metric: MetricKind,
    /// The attack-class mix victims are subjected to.
    pub attack: AttackMix,
    /// Degree of damage `D` (metres).
    pub damage: f64,
    /// Compromised-neighbour fraction `x`.
    pub fraction: f64,
}

/// The attack grid: the cartesian product of metrics × attack mixes ×
/// damages × fractions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamGrid {
    /// Detection metrics (each cell both scores with and is targeted at its
    /// metric).
    pub metrics: Vec<MetricKind>,
    /// Attack-class mixes.
    pub attacks: Vec<AttackMix>,
    /// Degrees of damage `D`.
    pub damages: Vec<f64>,
    /// Compromised-neighbour fractions `x`.
    pub fractions: Vec<f64>,
}

impl ParamGrid {
    /// A one-cell grid (the degenerate case: a single parameter point).
    pub fn single(metric: MetricKind, class: AttackClass, damage: f64, fraction: f64) -> Self {
        Self {
            metrics: vec![metric],
            attacks: vec![AttackMix::pure(class)],
            damages: vec![damage],
            fractions: vec![fraction],
        }
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.metrics.len() * self.attacks.len() * self.damages.len() * self.fractions.len()
    }

    /// `true` when the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into cells, in deterministic (metric-major) order.
    pub fn cells(&self) -> Vec<CellParams> {
        let mut out = Vec::with_capacity(self.len());
        for &metric in &self.metrics {
            for attack in &self.attacks {
                for &damage in &self.damages {
                    for &fraction in &self.fractions {
                        out.push(CellParams {
                            metric,
                            attack: attack.clone(),
                            damage,
                            fraction,
                        });
                    }
                }
            }
        }
        out
    }
}

/// A complete declarative scenario: deployments × grid × sampling plan.
///
/// Run with [`ScenarioRunner`](crate::scenario::ScenarioRunner); see the
/// [module docs](crate::scenario) and the crate-level "define your own
/// scenario" snippet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Short identifier (report/artefact file stem).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Deployment axes (at least one).
    pub deployments: Vec<DeploymentAxis>,
    /// The attack grid.
    pub grid: ParamGrid,
    /// How much to sample.
    pub sampling: SamplingPlan,
    /// Streaming-accumulator layout for all score distributions.
    pub accumulator: AccumulatorConfig,
}

impl ScenarioSpec {
    /// A single-deployment scenario with the default accumulator layout.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        axis: DeploymentAxis,
        grid: ParamGrid,
        sampling: SamplingPlan,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            deployments: vec![axis],
            grid,
            sampling,
            accumulator: AccumulatorConfig::default(),
        }
    }

    /// Returns a copy with several deployment axes.
    pub fn with_deployments(mut self, deployments: Vec<DeploymentAxis>) -> Self {
        assert!(!deployments.is_empty(), "a scenario needs a deployment");
        self.deployments = deployments;
        self
    }

    /// Returns a copy with a different accumulator layout.
    pub fn with_accumulator(mut self, accumulator: AccumulatorConfig) -> Self {
        self.accumulator = accumulator;
        self
    }

    /// Total number of attacked-victim trials the scenario will simulate.
    pub fn total_trials(&self) -> usize {
        self.deployments.len() * self.grid.len() * self.sampling.total_victims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_expansion_is_the_cartesian_product_in_metric_major_order() {
        let grid = ParamGrid {
            metrics: vec![MetricKind::Diff, MetricKind::AddAll],
            attacks: vec![AttackMix::pure(AttackClass::DecBounded)],
            damages: vec![40.0, 80.0],
            fractions: vec![0.1, 0.2, 0.3],
        };
        let cells = grid.cells();
        assert_eq!(cells.len(), grid.len());
        assert_eq!(cells.len(), 2 * 2 * 3);
        assert_eq!(cells[0].metric, MetricKind::Diff);
        assert_eq!(cells[0].damage, 40.0);
        assert_eq!(cells[0].fraction, 0.1);
        assert_eq!(cells[1].fraction, 0.2);
        assert_eq!(cells.last().unwrap().metric, MetricKind::AddAll);
    }

    #[test]
    fn pure_mix_always_picks_its_class_and_mixes_split_by_weight() {
        let pure = AttackMix::pure(AttackClass::DecOnly);
        for draw in 0..50 {
            assert_eq!(pure.pick(draw), AttackClass::DecOnly);
        }
        let mix = AttackMix::weighted(
            "3:1",
            vec![(AttackClass::DecBounded, 3), (AttackClass::DecOnly, 1)],
        );
        let bounded = (0..4000u64)
            .filter(|&d| mix.pick(d) == AttackClass::DecBounded)
            .count();
        assert_eq!(bounded, 3000, "weights partition the draw space exactly");
    }

    #[test]
    fn seed_token_depends_on_content_not_label() {
        let a = AttackMix::weighted(
            "a",
            vec![(AttackClass::DecBounded, 1), (AttackClass::DecOnly, 1)],
        );
        let b = AttackMix::weighted(
            "b",
            vec![(AttackClass::DecBounded, 1), (AttackClass::DecOnly, 1)],
        );
        assert_eq!(a.seed_token(), b.seed_token());
        assert_ne!(
            a.seed_token(),
            AttackMix::pure(AttackClass::DecBounded).seed_token()
        );
    }

    #[test]
    fn axis_mismatch_only_changes_the_actual_config() {
        let axis = DeploymentAxis::new("m=300", lad_deployment::DeploymentConfig::paper_default())
            .with_actual_sigma(80.0);
        assert_eq!(axis.config.sigma, 50.0);
        assert_eq!(axis.actual_config().sigma, 80.0);
        let matched = DeploymentAxis::new("m", lad_deployment::DeploymentConfig::paper_default());
        assert_eq!(matched.actual_config(), matched.config);
    }

    #[test]
    fn matched_actual_sigma_normalises_to_no_mismatch() {
        // A "mismatch" equal to the assumed σ is no mismatch at all; the
        // normalisation lets such axes share cached substrates with plain
        // matched-model axes.
        let config = lad_deployment::DeploymentConfig::paper_default();
        let axis = DeploymentAxis::new("sigma=50", config).with_actual_sigma(config.sigma);
        assert_eq!(axis.actual_sigma, None);
    }
}
