//! Declarative scenarios + streaming Monte-Carlo evaluation.
//!
//! Every experiment of the paper's §7 is the same shape: sweep a parameter
//! grid (metric × attack × degree-of-damage `D` × compromised fraction `x`,
//! possibly across several deployments), compare the clean score
//! distribution against the attacked one at each grid cell, and report ROC /
//! detection-rate operating points. This module makes that shape a *value*
//! instead of a hand-rolled loop:
//!
//! * [`ScenarioSpec`] — the declarative description: deployment axes
//!   ([`DeploymentAxis`]: config, optional placement-model mismatch, choice
//!   of localization scheme), an attack [`ParamGrid`] (including weighted
//!   [`AttackMix`]es the old per-point harness could not express), a
//!   [`SamplingPlan`] and a streaming-accumulator layout.
//! * [`Substrate`] — the per-deployment shared work, done **once** and
//!   reused by every attack cell: simulated networks plus the clean score
//!   distributions (streamed into
//!   [`ScoreAccumulator`](lad_stats::ScoreAccumulator)s). A
//!   [`SubstrateCache`] shares substrates across scenarios that use the same
//!   deployment axis and sampling plan.
//! * [`ScenarioRunner`] — expands the grid into `(deployment, cell)` trial
//!   streams and fans the **whole grid** out on one Rayon pool (instead of
//!   parallelising only within a single parameter point). Per-trial seeds
//!   are derived from the master seed, so results are bit-deterministic for
//!   a fixed seed regardless of thread count.
//!
//! Defining a new scenario takes ~15 lines; see the crate-level docs or
//! `examples/custom_scenario.rs` for a runnable template.

mod runner;
mod spec;
mod substrate;

pub use runner::{CellResult, DeploymentResult, ScenarioResult, ScenarioRunner};
pub use spec::{
    AttackMix, CellParams, DeploymentAxis, LocalizerChoice, ParamGrid, SamplingPlan, ScenarioSpec,
};
pub use substrate::{sample_node_ids, Substrate, SubstrateCache};
