//! Grid expansion and whole-grid parallel execution.

use crate::scenario::spec::{CellParams, ScenarioSpec};
use crate::scenario::substrate::{Substrate, SubstrateCache};
use lad_core::MetricKind;
use lad_stats::{streaming_roc, RocCurve, ScoreAccumulator};
use rayon::prelude::*;
use std::sync::Arc;

/// Executes a [`ScenarioSpec`]: builds (or fetches) one [`Substrate`] per
/// deployment axis, then fans the *entire* `deployment × cell` grid out on
/// one Rayon pool — a 3-deployment × 60-cell scenario is 180 independent
/// trial streams saturating the machine, not 180 sequential points each
/// parallelising internally.
pub struct ScenarioRunner<'a> {
    spec: &'a ScenarioSpec,
    cache: Option<&'a SubstrateCache>,
}

impl<'a> ScenarioRunner<'a> {
    /// A runner that builds its substrates privately.
    pub fn new(spec: &'a ScenarioSpec) -> Self {
        Self { spec, cache: None }
    }

    /// A runner that shares substrates through `cache` (deployments reused
    /// across scenarios are simulated once).
    pub fn with_cache(spec: &'a ScenarioSpec, cache: &'a SubstrateCache) -> Self {
        Self {
            spec,
            cache: Some(cache),
        }
    }

    /// Runs the scenario. Results are bit-deterministic for a fixed
    /// `sampling.seed` regardless of thread count: every trial's RNG seed is
    /// derived from the master seed and the trial's grid coordinates, and
    /// all streaming folds happen in deterministic grid order.
    pub fn run(&self) -> ScenarioResult {
        let spec = self.spec;
        assert!(
            !spec.deployments.is_empty(),
            "a scenario needs a deployment"
        );
        assert!(!spec.grid.is_empty(), "a scenario needs at least one cell");
        let owned_cache;
        let cache = match self.cache {
            Some(cache) => cache,
            None => {
                owned_cache = SubstrateCache::new();
                &owned_cache
            }
        };
        let substrates: Vec<Arc<Substrate>> = spec
            .deployments
            .iter()
            .map(|axis| cache.substrate(axis, &spec.sampling, spec.accumulator))
            .collect();

        // The whole grid as one flat work list.
        let cells = spec.grid.cells();
        let work: Vec<(usize, usize)> = (0..substrates.len())
            .flat_map(|d| (0..cells.len()).map(move |c| (d, c)))
            .collect();
        let attacked: Vec<ScoreAccumulator> = work
            .par_iter()
            .map(|&(d, c)| substrates[d].collect_attacked(&cells[c], spec.accumulator))
            .collect();

        let mut attacked = attacked.into_iter();
        let deployments = spec
            .deployments
            .iter()
            .zip(substrates)
            .map(|(axis, substrate)| DeploymentResult {
                // The spec's label, not the substrate's: cached substrates
                // are shared across scenarios whose axes differ only in
                // label.
                label: axis.label.clone(),
                cells: cells
                    .iter()
                    .map(|cell| CellResult {
                        params: cell.clone(),
                        attacked: attacked.next().expect("one result per work item"),
                    })
                    .collect(),
                substrate,
            })
            .collect();

        ScenarioResult {
            id: spec.id.clone(),
            title: spec.title.clone(),
            deployments,
        }
    }
}

/// Attacked scores of one grid cell on one deployment axis.
pub struct CellResult {
    /// The cell's grid coordinates.
    pub params: CellParams,
    /// The streamed attacked-score distribution.
    pub attacked: ScoreAccumulator,
}

/// All cells of one deployment axis, plus its shared substrate.
pub struct DeploymentResult {
    /// The axis label.
    pub label: String,
    /// The shared substrate (networks, clean scores, engine).
    pub substrate: Arc<Substrate>,
    /// One result per grid cell, in grid order.
    pub cells: Vec<CellResult>,
}

impl DeploymentResult {
    /// The clean score distribution of `metric` on this axis.
    pub fn clean(&self, metric: MetricKind) -> &ScoreAccumulator {
        self.substrate.clean(metric)
    }

    /// The ROC curve of one cell (clean vs attacked).
    pub fn roc(&self, cell: &CellResult) -> RocCurve {
        streaming_roc(self.clean(cell.params.metric), &cell.attacked)
    }

    /// Best detection rate of one cell within a false-positive budget.
    pub fn detection_rate(&self, cell: &CellResult, max_fp: f64) -> f64 {
        self.roc(cell).detection_rate_at_fp(max_fp)
    }

    /// Finds the cell at the given grid coordinates (`attack_label` as in
    /// [`crate::scenario::AttackMix::label`]).
    pub fn find_cell(
        &self,
        metric: MetricKind,
        attack_label: &str,
        damage: f64,
        fraction: f64,
    ) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.params.metric == metric
                && c.params.attack.label() == attack_label
                && c.params.damage == damage
                && c.params.fraction == fraction
        })
    }
}

/// The outcome of one scenario run.
pub struct ScenarioResult {
    /// The spec's identifier.
    pub id: String,
    /// The spec's title.
    pub title: String,
    /// One result per deployment axis, in spec order.
    pub deployments: Vec<DeploymentResult>,
}

impl ScenarioResult {
    /// The result of the only deployment axis (panics when there are
    /// several — use [`Self::deployments`] then).
    pub fn single(&self) -> &DeploymentResult {
        assert_eq!(
            self.deployments.len(),
            1,
            "scenario has {} deployment axes",
            self.deployments.len()
        );
        &self.deployments[0]
    }

    /// The deployment result with the given label.
    pub fn deployment(&self, label: &str) -> Option<&DeploymentResult> {
        self.deployments.iter().find(|d| d.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use crate::scenario::spec::{AttackMix, DeploymentAxis, ParamGrid, SamplingPlan};
    use lad_attack::AttackClass;
    use lad_stats::AccumulatorConfig;

    fn tiny_spec() -> ScenarioSpec {
        let base = EvalConfig::bench();
        ScenarioSpec::new(
            "tiny",
            "tiny scenario",
            DeploymentAxis::new("bench", base.deployment),
            ParamGrid {
                metrics: vec![MetricKind::Diff],
                attacks: vec![
                    AttackMix::pure(AttackClass::DecBounded),
                    AttackMix::pure(AttackClass::DecOnly),
                ],
                damages: vec![60.0, 140.0],
                fractions: vec![0.1],
            },
            SamplingPlan {
                networks: base.networks,
                clean_samples_per_network: base.clean_samples_per_network,
                victims_per_network: base.victims_per_network,
                seed: base.seed,
            },
        )
    }

    #[test]
    fn runner_produces_one_cell_result_per_grid_cell() {
        let spec = tiny_spec();
        let result = ScenarioRunner::new(&spec).run();
        let dep = result.single();
        assert_eq!(dep.cells.len(), spec.grid.len());
        assert!(
            dep.clean(MetricKind::Diff).count() > 0,
            "clean side collected"
        );
        for cell in &dep.cells {
            assert_eq!(
                cell.attacked.count() as usize,
                spec.sampling.total_victims()
            );
            let auc = dep.roc(cell).auc();
            assert!((0.0..=1.0).contains(&auc));
        }
        // Qualitative: more damage is easier to detect.
        let small = dep
            .find_cell(MetricKind::Diff, "dec-bounded", 60.0, 0.1)
            .unwrap();
        let large = dep
            .find_cell(MetricKind::Diff, "dec-bounded", 140.0, 0.1)
            .unwrap();
        assert!(dep.detection_rate(large, 0.05) + 1e-9 >= dep.detection_rate(small, 0.05));
    }

    #[test]
    fn reruns_are_bit_deterministic_even_when_binned() {
        let mut spec = tiny_spec();
        spec.accumulator = AccumulatorConfig {
            exact_limit: 8, // force the binned path
            ..AccumulatorConfig::default()
        };
        let a = ScenarioRunner::new(&spec).run();
        let b = ScenarioRunner::new(&spec).run();
        for (da, db) in a.deployments.iter().zip(&b.deployments) {
            for metric in MetricKind::ALL {
                assert_eq!(da.clean(metric), db.clean(metric));
            }
            for (ca, cb) in da.cells.iter().zip(&db.cells) {
                assert_eq!(ca.attacked, cb.attacked);
            }
        }
    }

    #[test]
    fn streaming_results_match_exact_results_within_the_documented_bound() {
        let exact_spec = tiny_spec().with_accumulator(AccumulatorConfig::exact());
        let binned_spec = tiny_spec().with_accumulator(AccumulatorConfig {
            exact_limit: 0,
            ..AccumulatorConfig::default()
        });
        let exact = ScenarioRunner::new(&exact_spec).run();
        let binned = ScenarioRunner::new(&binned_spec).run();
        let (de, db) = (exact.single(), binned.single());
        for (ce, cb) in de.cells.iter().zip(&db.cells) {
            let (roc_e, roc_b) = (de.roc(ce), db.roc(cb));
            let eps = db
                .clean(cb.params.metric)
                .max_bin_fraction()
                .min(cb.attacked.max_bin_fraction());
            assert!(
                (roc_e.auc() - roc_b.auc()).abs() <= eps + 1e-9,
                "cell {:?}: exact AUC {} vs binned {} (eps {eps})",
                cb.params,
                roc_e.auc(),
                roc_b.auc()
            );
            let dr_deficit = cb.attacked.max_bin_fraction();
            let (dr_e, dr_b) = (
                roc_e.detection_rate_at_fp(0.05),
                roc_b.detection_rate_at_fp(0.05),
            );
            assert!(dr_b <= dr_e + 1e-9 && dr_b >= dr_e - dr_deficit - 1e-9);
        }
    }

    #[test]
    fn shared_cache_reuses_substrates_across_scenarios() {
        let cache = SubstrateCache::new();
        let spec_a = tiny_spec();
        let mut spec_b = tiny_spec();
        spec_b.id = "other".into();
        spec_b.grid = ParamGrid::single(MetricKind::Diff, AttackClass::DecBounded, 100.0, 0.2);
        let a = ScenarioRunner::with_cache(&spec_a, &cache).run();
        let b = ScenarioRunner::with_cache(&spec_b, &cache).run();
        assert_eq!(cache.len(), 1, "one shared deployment point");
        assert!(Arc::ptr_eq(&a.single().substrate, &b.single().substrate));
    }

    #[test]
    fn mixed_attack_workloads_interpolate_between_pure_classes() {
        let mut spec = tiny_spec();
        spec.grid = ParamGrid {
            metrics: vec![MetricKind::Diff],
            attacks: vec![
                AttackMix::pure(AttackClass::DecBounded),
                AttackMix::pure(AttackClass::DecOnly),
                AttackMix::weighted(
                    "mixed-50-50",
                    vec![(AttackClass::DecBounded, 1), (AttackClass::DecOnly, 1)],
                ),
            ],
            damages: vec![80.0],
            fractions: vec![0.1],
        };
        let result = ScenarioRunner::new(&spec).run();
        let dep = result.single();
        let dr = |label: &str| {
            let cell = dep.find_cell(MetricKind::Diff, label, 80.0, 0.1).unwrap();
            dep.detection_rate(cell, 0.10)
        };
        let (bounded, only, mixed) = (dr("dec-bounded"), dr("dec-only"), dr("mixed-50-50"));
        // Dec-Only is the easier class to detect; the mixed workload must sit
        // between the two pure workloads (generous slack for sampling noise).
        assert!(only + 1e-9 >= bounded);
        assert!(
            mixed + 0.15 >= bounded && mixed <= only + 0.15,
            "mixed {mixed} should sit between {bounded} and {only}"
        );
    }
}
