//! Per-deployment shared work: simulated networks and clean-score streams.
//!
//! Everything a scenario needs *once per deployment axis* — regardless of
//! how many attack cells its grid has — lives in a [`Substrate`]: the
//! simulated networks, a score-only [`LadEngine`] over the assumed
//! deployment model, and the clean score distribution of every metric,
//! streamed into [`ScoreAccumulator`]s. A [`SubstrateCache`] deduplicates
//! substrates across scenarios (e.g. fig4 through fig8 share one standard
//! deployment point, so its networks and clean scores are computed once per
//! process, not once per figure).

use crate::scenario::spec::{CellParams, DeploymentAxis, LocalizerChoice, SamplingPlan};
use lad_attack::{simulate_attack, AttackConfig};
use lad_core::engine::LadEngine;
use lad_core::MetricKind;
use lad_deployment::DeploymentKnowledge;
use lad_localization::{AnchorField, CentroidLocalizer, DvHopLocalizer, Localizer};
use lad_net::{Network, NodeId, ObservationBatch};
use lad_stats::seeds::derive_seed;
use lad_stats::{AccumulatorConfig, OnlineStats, ScoreAccumulator, Summary};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Samples `count` distinct node ids **without replacement** (the shared
/// [`seeded_partial_shuffle`](lad_stats::seeds::seeded_partial_shuffle)
/// primitive). Sampling with replacement would let the same node appear
/// several times in one Monte-Carlo batch, which silently correlates
/// "independent" trials on small networks; without replacement every
/// sampled victim is unique. When `count` exceeds the network size, every
/// node is returned (in shuffled order).
pub fn sample_node_ids(network: &Network, count: usize, seed: u64) -> Vec<NodeId> {
    let n = network.node_count();
    let count = count.min(n);
    let mut pool = lad_stats::seeds::seeded_partial_shuffle(n, count, seed);
    pool.truncate(count);
    pool.into_iter().map(NodeId).collect()
}

/// Seed-path tags (the first index of every derived seed), kept distinct so
/// streams never collide across purposes.
const TAG_NETWORK: u64 = 0xC1EA;
const TAG_CLEAN_IDS: u64 = 0x5A3D;
const TAG_ANCHORS: u64 = 0xA2C4;
const TAG_ATTACK: u64 = 0xA77A;

/// The once-per-deployment shared state of a scenario: simulated networks,
/// the assumed-model scoring engine, and streamed clean scores.
pub struct Substrate {
    axis: DeploymentAxis,
    sampling: SamplingPlan,
    accumulator: AccumulatorConfig,
    engine: LadEngine,
    networks: Vec<Network>,
    clean: Vec<ScoreAccumulator>,
    clean_errors: Summary,
}

impl Substrate {
    /// Builds the substrate: generates the networks (under the axis's
    /// *actual* configuration) and streams the clean scores of every metric
    /// (scored under the *assumed* configuration) into accumulators.
    pub fn new(
        axis: &DeploymentAxis,
        sampling: &SamplingPlan,
        accumulator: AccumulatorConfig,
    ) -> Self {
        let engine = LadEngine::builder()
            .deployment(&axis.config)
            .metrics(&MetricKind::ALL)
            .score_only()
            .build()
            .expect("scenario deployment is valid");
        let actual = DeploymentKnowledge::shared(&axis.actual_config());
        let networks: Vec<Network> = (0..sampling.networks)
            .into_par_iter()
            .map(|i| {
                Network::generate(
                    actual.clone(),
                    derive_seed(sampling.seed, &[TAG_NETWORK, i as u64]),
                )
            })
            .collect();

        // Clean collection: one parallel pass per network, folded in network
        // order (streaming merges are order-deterministic, so results do not
        // depend on thread scheduling).
        let partials: Vec<(Vec<ScoreAccumulator>, OnlineStats)> = networks
            .par_iter()
            .enumerate()
            .map(|(net_idx, network)| {
                clean_partial(&engine, axis, sampling, accumulator, network, net_idx)
            })
            .collect();
        let mut clean: Vec<ScoreAccumulator> = MetricKind::ALL
            .iter()
            .map(|_| ScoreAccumulator::new(accumulator))
            .collect();
        let mut errors = OnlineStats::new();
        for (accs, errs) in partials {
            for (into, acc) in clean.iter_mut().zip(accs) {
                into.merge(acc);
            }
            errors.merge(&errs);
        }

        Self {
            axis: axis.clone(),
            sampling: *sampling,
            accumulator,
            engine,
            networks,
            clean,
            clean_errors: errors.summary(),
        }
    }

    /// The deployment axis this substrate realises.
    pub fn axis(&self) -> &DeploymentAxis {
        &self.axis
    }

    /// The sampling plan the substrate was built with.
    pub fn sampling(&self) -> &SamplingPlan {
        &self.sampling
    }

    /// The accumulator layout the clean scores were streamed into.
    pub fn accumulator(&self) -> AccumulatorConfig {
        self.accumulator
    }

    /// The score-only engine (all three metrics, assumed deployment model).
    pub fn engine(&self) -> &LadEngine {
        &self.engine
    }

    /// The assumed deployment knowledge.
    pub fn knowledge(&self) -> &Arc<DeploymentKnowledge> {
        self.engine.knowledge()
    }

    /// The simulated networks.
    pub fn networks(&self) -> &[Network] {
        &self.networks
    }

    /// The streamed clean score distribution of `metric`.
    pub fn clean(&self, metric: MetricKind) -> &ScoreAccumulator {
        let idx = self
            .engine
            .metric_index(metric)
            .expect("substrate engine scores all metrics");
        &self.clean[idx]
    }

    /// Summary of the clean localization errors `|L_e − L_a|` (baseline
    /// accuracy of the localization substrate on this axis).
    pub fn clean_error_summary(&self) -> Summary {
        self.clean_errors
    }

    /// Streams the attacked scores of one grid cell into an accumulator
    /// with layout `accumulator` (usually the spec's).
    ///
    /// Trial seeds derive from `(master, network, D-bits, x-bits, mix,
    /// metric)`; note `fraction.to_bits()` — deriving from a truncated
    /// `fraction * 1e6` would collide for nearby fractions.
    pub fn collect_attacked(
        &self,
        cell: &CellParams,
        accumulator: AccumulatorConfig,
    ) -> ScoreAccumulator {
        let column = self
            .engine
            .metric_index(cell.metric)
            .expect("substrate engine scores all metrics");
        let mut out = ScoreAccumulator::new(accumulator);
        let mut scores: Vec<f64> = Vec::new();
        let mut rows = ObservationBatch::new(self.knowledge().group_count());
        for (net_idx, network) in self.networks.iter().enumerate() {
            let point_seed = derive_seed(
                self.sampling.seed,
                &[
                    TAG_ATTACK,
                    net_idx as u64,
                    cell.damage.to_bits(),
                    cell.fraction.to_bits(),
                    cell.attack.seed_token(),
                    column as u64,
                ],
            );
            let ids = sample_node_ids(
                network,
                self.sampling.victims_per_network,
                derive_seed(point_seed, &[1]),
            );
            // One network's worth of trials: simulate (parallel), pack the
            // tainted observations into a flat CSR batch, batch-score into
            // a flat reused buffer, stream. Buffers are bounded by
            // victims_per_network, not the cell's total sample count.
            let outcomes: Vec<_> = ids
                .into_par_iter()
                .enumerate()
                .map(|(k, victim)| {
                    let class = cell.attack.pick(derive_seed(point_seed, &[3, k as u64]));
                    let attack = AttackConfig {
                        degree_of_damage: cell.damage,
                        compromised_fraction: cell.fraction,
                        class,
                        targeted_metric: cell.metric,
                    };
                    let mut rng =
                        ChaCha8Rng::seed_from_u64(derive_seed(point_seed, &[2, k as u64]));
                    simulate_attack(network, victim, &attack, &mut rng)
                })
                .collect();
            rows.clear();
            for outcome in &outcomes {
                rows.push(&outcome.tainted_observation, outcome.forged_location);
            }
            let width = self.engine.metrics().len();
            self.engine.score_rows_into(&rows, &mut scores);
            out.extend(scores.chunks_exact(width).map(|row| row[column]));
        }
        out
    }
}

/// Clean scores (per metric) and localization errors of one network.
fn clean_partial(
    engine: &LadEngine,
    axis: &DeploymentAxis,
    sampling: &SamplingPlan,
    accumulator: AccumulatorConfig,
    network: &Network,
    net_idx: usize,
) -> (Vec<ScoreAccumulator>, OnlineStats) {
    let ids = sample_node_ids(
        network,
        sampling.clean_samples_per_network,
        derive_seed(sampling.seed, &[TAG_CLEAN_IDS, net_idx as u64]),
    );

    // Beacon-based baselines need a per-network anchor field.
    let beacon_localizer: Option<Box<dyn Localizer>> = match axis.localizer {
        LocalizerChoice::BeaconlessMle => None,
        LocalizerChoice::Centroid { anchors } | LocalizerChoice::DvHop { anchors } => {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(
                sampling.seed,
                &[TAG_ANCHORS, net_idx as u64],
            ));
            let beacon_range = axis.config.area_side / 3.0;
            let field = AnchorField::random(network, anchors, beacon_range, &mut rng);
            Some(match axis.localizer {
                LocalizerChoice::Centroid { .. } => Box::new(CentroidLocalizer::new(field)),
                _ => Box::new(DvHopLocalizer::build(network, &field)),
            })
        }
    };

    let knowledge = engine.knowledge();
    let mut rows = ObservationBatch::new(knowledge.group_count());
    let mut errors = OnlineStats::new();
    for id in ids {
        let obs = network.true_observation(id);
        let estimate = match &beacon_localizer {
            // The engine's scheme sees only the assumed knowledge and the
            // observation — exactly what a deployed sensor holds.
            None => engine.localizer().estimate(knowledge, &obs),
            Some(localizer) => localizer.localize(network, id),
        };
        let Some(estimate) = estimate else { continue };
        errors.push(estimate.distance(network.node(id).resident_point));
        rows.push(&obs, estimate);
    }

    let mut scored = Vec::new();
    engine.score_rows_into(&rows, &mut scored);
    let mut accs: Vec<ScoreAccumulator> = MetricKind::ALL
        .iter()
        .map(|_| ScoreAccumulator::new(accumulator))
        .collect();
    for row in scored.chunks_exact(engine.metrics().len()) {
        for (acc, &score) in accs.iter_mut().zip(row) {
            acc.add(score);
        }
    }
    (accs, errors)
}

/// A process-wide cache of substrates, keyed by everything that determines
/// their content (axis minus its label, sampling plan, accumulator layout).
/// Scenarios that share a deployment point share its networks and clean
/// scores.
#[derive(Default)]
pub struct SubstrateCache {
    map: Mutex<HashMap<String, Arc<Substrate>>>,
}

impl SubstrateCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached substrate for `(axis, sampling, accumulator)`,
    /// building it on first use.
    pub fn substrate(
        &self,
        axis: &DeploymentAxis,
        sampling: &SamplingPlan,
        accumulator: AccumulatorConfig,
    ) -> Arc<Substrate> {
        let key = format!(
            "{}|{}|{}|{}|{}",
            serde_json::to_string(&axis.config).expect("config serialises"),
            serde_json::to_string(&axis.actual_sigma).expect("sigma serialises"),
            serde_json::to_string(&axis.localizer).expect("localizer serialises"),
            serde_json::to_string(sampling).expect("sampling serialises"),
            serde_json::to_string(&accumulator).expect("accumulator serialises"),
        );
        if let Some(found) = self.map.lock().expect("cache lock").get(&key) {
            return found.clone();
        }
        let built = Arc::new(Substrate::new(axis, sampling, accumulator));
        self.map
            .lock()
            .expect("cache lock")
            .entry(key)
            .or_insert(built)
            .clone()
    }

    /// Number of distinct substrates currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
