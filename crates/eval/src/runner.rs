//! `EvalContext` — a thin compatibility layer over the scenario substrate.
//!
//! The experiments themselves are declared as [`ScenarioSpec`]s and executed
//! by the [`ScenarioRunner`](crate::scenario::ScenarioRunner); this module
//! keeps the older buffered, raw-`Vec<f64>` interface alive for callers that
//! want direct access to score samples (examples, tests, ad-hoc analysis).
//! Everything is delegated to [`Substrate`]: `EvalContext` is one substrate
//! built with an exact (never-spilling) accumulator layout, so its slices
//! are the exact distributions, at the cost of O(samples) memory — the
//! streaming scenario path is the scalable one.
//!
//! [`ScenarioSpec`]: crate::scenario::ScenarioSpec

use crate::config::EvalConfig;
use crate::scenario::{AttackMix, CellParams, Substrate};
use lad_attack::AttackClass;
use lad_core::engine::LadEngine;
use lad_core::MetricKind;
use lad_deployment::DeploymentKnowledge;
use lad_net::Network;
use lad_stats::{AccumulatorConfig, RocCurve, Summary};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The clean / attacked score pair for one metric at one parameter point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreSet {
    /// The metric the scores belong to.
    pub metric: MetricKind,
    /// Scores of clean (honest, localization-derived) samples.
    pub clean: Vec<f64>,
    /// Scores of attacked victims.
    pub attacked: Vec<f64>,
}

impl ScoreSet {
    /// The ROC curve obtained by sweeping the detection threshold.
    pub fn roc(&self) -> RocCurve {
        RocCurve::from_scores(&self.clean, &self.attacked)
    }

    /// Best detection rate achievable with false-positive rate ≤ `max_fp`.
    pub fn detection_rate_at_fp(&self, max_fp: f64) -> f64 {
        self.roc().detection_rate_at_fp(max_fp)
    }
}

/// Pre-generated deployments plus exact cached clean scores for one
/// [`EvalConfig`] — the buffered compatibility view of a scenario
/// [`Substrate`].
pub struct EvalContext {
    config: EvalConfig,
    substrate: Arc<Substrate>,
}

impl EvalContext {
    /// Generates the deployments and computes the clean score distributions
    /// (exact accumulator layout: every score is retained).
    pub fn new(config: EvalConfig) -> Self {
        let substrate = Arc::new(Substrate::new(
            &config.deployment_axis("eval"),
            &config.sampling_plan(),
            AccumulatorConfig::exact(),
        ));
        Self { config, substrate }
    }

    /// Wraps an existing exact-mode substrate (e.g. one shared through a
    /// [`SubstrateCache`](crate::scenario::SubstrateCache)).
    ///
    /// # Panics
    /// Panics when the substrate was built with a spilling accumulator
    /// layout (its clean scores are then no longer exact).
    pub fn from_substrate(config: EvalConfig, substrate: Arc<Substrate>) -> Self {
        assert!(
            substrate.clean(MetricKind::Diff).is_exact(),
            "EvalContext needs an exact-mode substrate"
        );
        Self { config, substrate }
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// The underlying scenario substrate.
    pub fn substrate(&self) -> &Arc<Substrate> {
        &self.substrate
    }

    /// The score-only engine (all three metrics) the context scores with.
    pub fn engine(&self) -> &LadEngine {
        self.substrate.engine()
    }

    /// The shared deployment knowledge.
    pub fn knowledge(&self) -> &Arc<DeploymentKnowledge> {
        self.substrate.knowledge()
    }

    /// The pre-generated deployments.
    pub fn networks(&self) -> &[Network] {
        self.substrate.networks()
    }

    /// Clean score distribution for `metric`.
    pub fn clean_scores(&self, metric: MetricKind) -> &[f64] {
        self.substrate
            .clean(metric)
            .exact_scores()
            .expect("EvalContext substrates are exact")
    }

    /// Summary of the localization errors `|L_e − L_a|` of the clean samples
    /// (no attack) — the substrate's baseline accuracy.
    pub fn clean_localization_errors(&self) -> Summary {
        self.substrate.clean_error_summary()
    }

    /// Attacked score distribution for `metric` under `class` with degree of
    /// damage `degree` and compromised-neighbour fraction `fraction`.
    pub fn attacked_scores(
        &self,
        metric: MetricKind,
        class: AttackClass,
        degree: f64,
        fraction: f64,
    ) -> Vec<f64> {
        let cell = CellParams {
            metric,
            attack: AttackMix::pure(class),
            damage: degree,
            fraction,
        };
        self.substrate
            .collect_attacked(&cell, AccumulatorConfig::exact())
            .into_exact_scores()
            .expect("exact layout never spills")
    }

    /// Convenience: the full [`ScoreSet`] for one parameter point.
    pub fn score_set(
        &self,
        metric: MetricKind,
        class: AttackClass,
        degree: f64,
        fraction: f64,
    ) -> ScoreSet {
        ScoreSet {
            metric,
            clean: self.clean_scores(metric).to_vec(),
            attacked: self.attacked_scores(metric, class, degree, fraction),
        }
    }

    /// Detection rate at a false-positive budget (the operating point used by
    /// Figures 7–9, where the paper fixes FP = 1 %).
    pub fn detection_rate(
        &self,
        metric: MetricKind,
        class: AttackClass,
        degree: f64,
        fraction: f64,
        max_fp: f64,
    ) -> f64 {
        self.score_set(metric, class, degree, fraction)
            .detection_rate_at_fp(max_fp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> EvalContext {
        EvalContext::new(EvalConfig::bench())
    }

    #[test]
    fn clean_scores_are_collected_for_all_metrics() {
        let ctx = ctx();
        for metric in MetricKind::ALL {
            let scores = ctx.clean_scores(metric);
            assert!(!scores.is_empty());
            assert!(scores.iter().all(|s| s.is_finite() && *s >= 0.0));
        }
        assert_eq!(
            ctx.clean_localization_errors().count,
            ctx.clean_scores(MetricKind::Diff).len()
        );
    }

    #[test]
    fn attacked_scores_are_deterministic() {
        let a = ctx().attacked_scores(MetricKind::Diff, AttackClass::DecBounded, 120.0, 0.1);
        let b = ctx().attacked_scores(MetricKind::Diff, AttackClass::DecBounded, 120.0, 0.1);
        assert_eq!(a, b);
        assert_eq!(a.len(), EvalConfig::bench().total_victims());
    }

    #[test]
    fn nearby_fractions_use_distinct_seed_streams() {
        // Regression: seeds were once derived from `(fraction * 1e6) as u64`,
        // which collides for fractions closer than 1e-6; `to_bits` keeps the
        // streams distinct.
        let ctx = ctx();
        let a = ctx.attacked_scores(MetricKind::Diff, AttackClass::DecBounded, 120.0, 0.1);
        let b = ctx.attacked_scores(MetricKind::Diff, AttackClass::DecBounded, 120.0, 0.1 + 1e-9);
        assert_ne!(a, b, "nearby fractions must not share trial seeds");
    }

    #[test]
    fn victims_are_sampled_without_replacement() {
        use crate::scenario::sample_node_ids;
        let ctx = ctx();
        let network = &ctx.networks()[0];
        let ids = sample_node_ids(network, network.node_count() / 2, 77);
        let mut seen = std::collections::HashSet::new();
        assert!(ids.iter().all(|id| seen.insert(*id)), "duplicates sampled");
        // Oversampling returns every node exactly once.
        let all = sample_node_ids(network, network.node_count() * 3, 77);
        assert_eq!(all.len(), network.node_count());
    }

    #[test]
    fn large_damage_is_detected_better_than_small_damage() {
        let ctx = ctx();
        let dr_small =
            ctx.detection_rate(MetricKind::Diff, AttackClass::DecBounded, 40.0, 0.1, 0.05);
        let dr_large =
            ctx.detection_rate(MetricKind::Diff, AttackClass::DecBounded, 160.0, 0.1, 0.05);
        assert!(
            dr_large >= dr_small,
            "DR should not decrease with damage: {dr_small} -> {dr_large}"
        );
        assert!(
            dr_large > 0.8,
            "large-damage attacks should be detected, DR = {dr_large}"
        );
    }

    #[test]
    fn dec_only_is_easier_to_detect_than_dec_bounded() {
        let ctx = ctx();
        let d = 80.0;
        let dr_bounded =
            ctx.detection_rate(MetricKind::Diff, AttackClass::DecBounded, d, 0.1, 0.05);
        let dr_only = ctx.detection_rate(MetricKind::Diff, AttackClass::DecOnly, d, 0.1, 0.05);
        assert!(
            dr_only + 1e-9 >= dr_bounded,
            "Dec-Only ({dr_only}) should be at least as detectable as Dec-Bounded ({dr_bounded})"
        );
    }

    #[test]
    fn score_set_roc_is_well_formed() {
        let ctx = ctx();
        let set = ctx.score_set(MetricKind::Diff, AttackClass::DecBounded, 120.0, 0.1);
        let roc = set.roc();
        let auc = roc.auc();
        assert!((0.0..=1.0).contains(&auc));
        assert!(
            auc > 0.5,
            "the detector should beat chance at D = 120 (AUC {auc})"
        );
    }
}
