//! Deterministic, parallel Monte-Carlo score collection.
//!
//! Every figure of §7 boils down to comparing two score distributions for a
//! detection metric:
//!
//! * **clean scores** — metric values of honest nodes whose location was
//!   estimated by the localization scheme (these set the thresholds and the
//!   false-positive axis), and
//! * **attacked scores** — metric values of victims subjected to the §7.1
//!   attack-simulation procedure (D-anomaly plus greedy taint).
//!
//! [`EvalContext`] pre-generates the deployments and the clean scores once,
//! then serves attacked-score queries for arbitrary `(metric, class, D, x)`
//! combinations. Scoring goes through a score-only
//! [`LadEngine`](lad_core::engine::LadEngine) configured with all three
//! metrics, so `µ(L_e)` is computed once per estimate; the simulation loops
//! are Rayon-parallel with per-trial seeds derived from the master seed, so
//! results are independent of thread scheduling.

use crate::config::EvalConfig;
use lad_attack::{simulate_attack, AttackClass, AttackConfig};
use lad_core::engine::{DetectionRequest, LadEngine};
use lad_core::MetricKind;
use lad_deployment::DeploymentKnowledge;
use lad_net::{Network, NodeId};
use lad_stats::seeds::derive_seed;
use lad_stats::RocCurve;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The clean / attacked score pair for one metric at one parameter point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreSet {
    /// The metric the scores belong to.
    pub metric: MetricKind,
    /// Scores of clean (honest, localization-derived) samples.
    pub clean: Vec<f64>,
    /// Scores of attacked victims.
    pub attacked: Vec<f64>,
}

impl ScoreSet {
    /// The ROC curve obtained by sweeping the detection threshold.
    pub fn roc(&self) -> RocCurve {
        RocCurve::from_scores(&self.clean, &self.attacked)
    }

    /// Best detection rate achievable with false-positive rate ≤ `max_fp`.
    pub fn detection_rate_at_fp(&self, max_fp: f64) -> f64 {
        self.roc().detection_rate_at_fp(max_fp)
    }
}

/// Pre-generated deployments plus cached clean scores for one [`EvalConfig`].
pub struct EvalContext {
    config: EvalConfig,
    engine: LadEngine,
    networks: Vec<Network>,
    clean_scores: [Vec<f64>; 3],
    clean_localization_errors: Vec<f64>,
}

impl EvalContext {
    /// Generates the deployments and computes the clean score distributions.
    pub fn new(config: EvalConfig) -> Self {
        let engine = LadEngine::builder()
            .deployment(&config.deployment)
            .metrics(&MetricKind::ALL)
            .score_only()
            .build()
            .expect("evaluation deployment is valid");
        let knowledge = engine.knowledge().clone();
        let networks: Vec<Network> = (0..config.networks)
            .map(|i| {
                Network::generate(
                    knowledge.clone(),
                    derive_seed(config.seed, &[0xC1EA, i as u64]),
                )
            })
            .collect();

        // Stage 1 (parallel): localize the sampled nodes, producing one
        // detection request and one localization error per localizable node.
        let localizer = engine.localizer();
        let samples: Vec<(DetectionRequest, f64)> = networks
            .par_iter()
            .enumerate()
            .flat_map(|(net_idx, network)| {
                let ids = sample_node_ids(
                    network,
                    config.clean_samples_per_network,
                    derive_seed(config.seed, &[0x5A3D, net_idx as u64]),
                );
                ids.into_par_iter()
                    .filter_map(move |id| {
                        let obs = network.true_observation(id);
                        let estimate = localizer.estimate(network.knowledge(), &obs)?;
                        let error = estimate.distance(network.node(id).resident_point);
                        Some((DetectionRequest::new(obs, estimate), error))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();

        // Stage 2: one batched scoring pass — µ(L_e) once per estimate,
        // shared by all three metrics.
        let (requests, clean_localization_errors): (Vec<_>, Vec<_>) = samples.into_iter().unzip();
        let scored = engine.score_batch(&requests);
        let mut clean_scores: [Vec<f64>; 3] = [
            Vec::with_capacity(scored.len()),
            Vec::with_capacity(scored.len()),
            Vec::with_capacity(scored.len()),
        ];
        for s in &scored {
            clean_scores[0].push(s[0]);
            clean_scores[1].push(s[1]);
            clean_scores[2].push(s[2]);
        }

        Self {
            config,
            engine,
            networks,
            clean_scores,
            clean_localization_errors,
        }
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// The score-only engine (all three metrics) the context scores with.
    pub fn engine(&self) -> &LadEngine {
        &self.engine
    }

    /// The shared deployment knowledge.
    pub fn knowledge(&self) -> &Arc<DeploymentKnowledge> {
        self.engine.knowledge()
    }

    /// The pre-generated deployments.
    pub fn networks(&self) -> &[Network] {
        &self.networks
    }

    /// Clean score distribution for `metric`.
    pub fn clean_scores(&self, metric: MetricKind) -> &[f64] {
        &self.clean_scores[metric_index(metric)]
    }

    /// Localization errors `|L_e − L_a|` of the clean samples (no attack) —
    /// used to report the substrate's baseline accuracy.
    pub fn clean_localization_errors(&self) -> &[f64] {
        &self.clean_localization_errors
    }

    /// Attacked score distribution for `metric` under `class` with degree of
    /// damage `degree` and compromised-neighbour fraction `fraction`.
    pub fn attacked_scores(
        &self,
        metric: MetricKind,
        class: AttackClass,
        degree: f64,
        fraction: f64,
    ) -> Vec<f64> {
        let attack = AttackConfig {
            degree_of_damage: degree,
            compromised_fraction: fraction,
            class,
            targeted_metric: metric,
        };
        // Stage 1 (parallel): simulate the attacks, producing one detection
        // request per victim, with per-victim seeds derived from the master
        // seed so results are scheduling-independent.
        let requests: Vec<DetectionRequest> = self
            .networks
            .par_iter()
            .enumerate()
            .flat_map(|(net_idx, network)| {
                let point_seed = derive_seed(
                    self.config.seed,
                    &[
                        0xA77A,
                        net_idx as u64,
                        degree.to_bits(),
                        (fraction * 1e6) as u64,
                        class as u64,
                        metric_index(metric) as u64,
                    ],
                );
                let ids = sample_node_ids(
                    network,
                    self.config.victims_per_network,
                    derive_seed(point_seed, &[1]),
                );
                ids.into_par_iter()
                    .enumerate()
                    .map(move |(k, victim)| {
                        let mut rng =
                            ChaCha8Rng::seed_from_u64(derive_seed(point_seed, &[2, k as u64]));
                        let outcome = simulate_attack(network, victim, &attack, &mut rng);
                        DetectionRequest::new(outcome.tainted_observation, outcome.forged_location)
                    })
                    .collect::<Vec<_>>()
            })
            .collect();

        // Stage 2: one batched scoring pass; keep the targeted metric's
        // column (resolved through the engine so the column always matches
        // its configured metric order).
        let column = self
            .engine
            .metric_index(metric)
            .expect("EvalContext engine scores all metrics");
        self.engine
            .score_batch(&requests)
            .into_iter()
            .map(|scores| scores[column])
            .collect()
    }

    /// Convenience: the full [`ScoreSet`] for one parameter point.
    pub fn score_set(
        &self,
        metric: MetricKind,
        class: AttackClass,
        degree: f64,
        fraction: f64,
    ) -> ScoreSet {
        ScoreSet {
            metric,
            clean: self.clean_scores(metric).to_vec(),
            attacked: self.attacked_scores(metric, class, degree, fraction),
        }
    }

    /// Detection rate at a false-positive budget (the operating point used by
    /// Figures 7–9, where the paper fixes FP = 1 %).
    pub fn detection_rate(
        &self,
        metric: MetricKind,
        class: AttackClass,
        degree: f64,
        fraction: f64,
        max_fp: f64,
    ) -> f64 {
        self.score_set(metric, class, degree, fraction)
            .detection_rate_at_fp(max_fp)
    }
}

fn metric_index(metric: MetricKind) -> usize {
    match metric {
        MetricKind::Diff => 0,
        MetricKind::AddAll => 1,
        MetricKind::Probability => 2,
    }
}

fn sample_node_ids(network: &Network, count: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| NodeId(rng.gen_range(0..network.node_count() as u32)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> EvalContext {
        EvalContext::new(EvalConfig::bench())
    }

    #[test]
    fn clean_scores_are_collected_for_all_metrics() {
        let ctx = ctx();
        for metric in MetricKind::ALL {
            let scores = ctx.clean_scores(metric);
            assert!(!scores.is_empty());
            assert!(scores.iter().all(|s| s.is_finite() && *s >= 0.0));
        }
        assert_eq!(
            ctx.clean_localization_errors().len(),
            ctx.clean_scores(MetricKind::Diff).len()
        );
    }

    #[test]
    fn attacked_scores_are_deterministic() {
        let a = ctx().attacked_scores(MetricKind::Diff, AttackClass::DecBounded, 120.0, 0.1);
        let b = ctx().attacked_scores(MetricKind::Diff, AttackClass::DecBounded, 120.0, 0.1);
        assert_eq!(a, b);
        assert_eq!(a.len(), EvalConfig::bench().total_victims());
    }

    #[test]
    fn large_damage_is_detected_better_than_small_damage() {
        let ctx = ctx();
        let dr_small =
            ctx.detection_rate(MetricKind::Diff, AttackClass::DecBounded, 40.0, 0.1, 0.05);
        let dr_large =
            ctx.detection_rate(MetricKind::Diff, AttackClass::DecBounded, 160.0, 0.1, 0.05);
        assert!(
            dr_large >= dr_small,
            "DR should not decrease with damage: {dr_small} -> {dr_large}"
        );
        assert!(
            dr_large > 0.8,
            "large-damage attacks should be detected, DR = {dr_large}"
        );
    }

    #[test]
    fn dec_only_is_easier_to_detect_than_dec_bounded() {
        let ctx = ctx();
        let d = 80.0;
        let dr_bounded =
            ctx.detection_rate(MetricKind::Diff, AttackClass::DecBounded, d, 0.1, 0.05);
        let dr_only = ctx.detection_rate(MetricKind::Diff, AttackClass::DecOnly, d, 0.1, 0.05);
        assert!(
            dr_only + 1e-9 >= dr_bounded,
            "Dec-Only ({dr_only}) should be at least as detectable as Dec-Bounded ({dr_bounded})"
        );
    }

    #[test]
    fn score_set_roc_is_well_formed() {
        let ctx = ctx();
        let set = ctx.score_set(MetricKind::Diff, AttackClass::DecBounded, 120.0, 0.1);
        let roc = set.roc();
        let auc = roc.auc();
        assert!((0.0..=1.0).contains(&auc));
        assert!(
            auc > 0.5,
            "the detector should beat chance at D = 120 (AUC {auc})"
        );
    }
}
