//! Figure 3: the four attacking scenarios, demonstrated quantitatively.
//!
//! The paper's Figure 3 is a cartoon of the silence, impersonation,
//! multi-impersonation and range-change attacks. This experiment demonstrates
//! each primitive on a concrete victim: it applies one instance of the
//! primitive and records (a) how far the victim's observation vector moves
//! (L1 distance from the clean observation) and (b) what a combined DoS
//! attack does to the Diff metric at the victim's true location.

use crate::report::{FigureReport, Series};
use crate::scenario::Substrate;
use lad_attack::dos::dos_taint;
use lad_attack::primitives::{apply_all, AttackPrimitive};
use lad_attack::AttackClass;
use lad_core::{DetectionMetric, DiffMetric, MetricKind};
use lad_net::NodeId;

/// Reproduces the Figure 3 showcase on a scenario substrate's first
/// simulated network.
pub fn attack_showcase(ctx: &Substrate) -> FigureReport {
    let mut report = FigureReport::new(
        "fig3",
        "Attack primitives: observation shift caused by one compromised neighbour",
        "primitive index (0 = silence, 1 = impersonation, 2 = multi-impersonation, 3 = range-change)",
        "L1 shift of the observation vector",
    );

    let network = ctx
        .networks()
        .first()
        .expect("context has at least one network");
    let knowledge = ctx.knowledge();
    // Pick the first victim with a reasonably populated neighbourhood.
    let victim = (0..network.node_count() as u32)
        .map(NodeId)
        .find(|&id| network.true_observation(id).total() >= 5)
        .expect("some node has neighbours");
    let clean = network.true_observation(victim);
    let mu = knowledge.expected_observation(network.node(victim).resident_point);
    let m = knowledge.group_size();

    // One representative instance of each primitive.
    let own_group = network.node(network.neighbors_of(victim)[0]).group.index();
    let other_group = (own_group + 1) % knowledge.group_count();
    let third_group = (own_group + 2) % knowledge.group_count();
    let primitives: Vec<(&str, AttackPrimitive)> = vec![
        ("silence", AttackPrimitive::Silence { group: own_group }),
        (
            "impersonation",
            AttackPrimitive::Impersonation {
                from: own_group,
                to: other_group,
            },
        ),
        (
            "multi-impersonation",
            AttackPrimitive::MultiImpersonation {
                from: own_group,
                claims: vec![(other_group, 5), (third_group, 5)],
            },
        ),
        (
            "range-change",
            AttackPrimitive::RangeChange { group: other_group },
        ),
    ];

    let mut points = Vec::new();
    for (idx, (name, primitive)) in primitives.iter().enumerate() {
        let tainted = apply_all(&clean, std::slice::from_ref(primitive));
        let shift = clean.l1_distance(&tainted) as f64;
        points.push((idx as f64, shift));
        report.push_note(format!(
            "{name}: shifts the observation by {shift} unit(s); consumes {} compromised neighbour(s)",
            primitive.compromised_neighbors_used()
        ));
    }
    report.push_series(Series::new("observation shift per primitive", points));

    // A combined DoS attack for scale: how far can 10% silenced neighbours
    // plus 20 forged messages push an honest node's Diff score?
    let baseline = DiffMetric.score(&clean, &mu, m);
    let budget = (clean.total() as f64 * 0.1).round() as usize;
    let dos = dos_taint(
        AttackClass::DecBounded,
        MetricKind::Diff,
        &clean,
        &mu,
        budget,
        20,
        m,
    );
    report.push_note(format!(
        "DoS (x = 10% silenced + 20 forged messages): Diff metric moves from {baseline:.2} to {:.2}",
        DiffMetric.score(&dos, &mu, m)
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use crate::experiments::standard_substrate;
    use crate::scenario::SubstrateCache;

    #[test]
    fn primitive_shifts_match_their_message_budgets() {
        let ctx = standard_substrate(&EvalConfig::bench(), &SubstrateCache::new());
        let report = attack_showcase(&ctx);
        let series = report
            .series_by_label("observation shift per primitive")
            .unwrap();
        assert_eq!(series.points.len(), 4);
        let shifts: Vec<f64> = series.points.iter().map(|(_, s)| *s).collect();
        // silence = 1, impersonation = 2, multi-impersonation = 1 + 10 = 11,
        // range-change = 1 (exact by construction of the primitives).
        assert_eq!(shifts, vec![1.0, 2.0, 11.0, 1.0]);
        assert!(report.notes.iter().any(|n| n.starts_with("DoS")));
    }
}
