//! One module per reproduced figure / ablation (see the crate-level table).
//!
//! Every Monte-Carlo experiment is declared as a
//! [`ScenarioSpec`](crate::scenario::ScenarioSpec) and executed by the
//! [`ScenarioRunner`](crate::scenario::ScenarioRunner); the modules here
//! only declare grids and render reports. Experiments share deployments
//! through a [`SubstrateCache`], so the standard deployment point is
//! simulated once per process no matter how many figures sweep it.
//!
//! [`SubstrateCache`]: crate::scenario::SubstrateCache

mod ablation_gz;
mod ablation_localizers;
mod ablation_mismatch;
mod attack_showcase;
mod containment;
mod deployment_figures;
mod fig4;
mod fig56;
mod fig7;
mod fig8;
mod fig9;
mod heatmap_dx;
mod mixed_attacks;
mod temporal;

pub use ablation_gz::ablation_gz_table;
pub use ablation_localizers::ablation_localizers;
pub use ablation_mismatch::ablation_model_mismatch;
pub use attack_showcase::attack_showcase;
pub use containment::containment;
pub use deployment_figures::deployment_figures;
pub use fig4::fig4_roc_metrics;
pub use fig56::fig56_roc_attacks;
pub use fig7::fig7_dr_vs_damage;
pub use fig8::fig8_dr_vs_compromise;
pub use fig9::fig9_dr_vs_density;
pub use heatmap_dx::heatmap_damage_compromise;
pub use mixed_attacks::mixed_attack_workload;
pub use temporal::temporal_detection;

use crate::config::EvalConfig;
use crate::scenario::{DeploymentAxis, Substrate, SubstrateCache};
use lad_stats::AccumulatorConfig;
use std::sync::Arc;

/// The false-positive budget the paper fixes for Figures 7–9.
pub const PAPER_FP_BUDGET: f64 = 0.01;

/// Upper median over `values` (`None` when empty) — the serving-native
/// experiments' summary statistic for censored durations: censored values
/// are fed in at `horizon + 1`, so a mostly-censored cell medians to the
/// cap instead of interpolating past it.
pub(crate) fn median(values: &mut [f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN duration"));
    Some(values[values.len() / 2])
}

/// The compromised-neighbour fraction used by most figures (x = 10 %).
pub const PAPER_COMPROMISED_FRACTION: f64 = 0.10;

/// The deployment axis most figures share (labelled by its group size).
pub fn standard_axis(base: &EvalConfig) -> DeploymentAxis {
    base.deployment_axis(format!("m={}", base.deployment.group_size))
}

/// The shared substrate of [`standard_axis`] — what the non-sweep
/// experiments (Figures 1–3, the g(z) ablation) read networks and
/// deployment knowledge from.
pub fn standard_substrate(base: &EvalConfig, cache: &SubstrateCache) -> Arc<Substrate> {
    cache.substrate(
        &standard_axis(base),
        &base.sampling_plan(),
        AccumulatorConfig::default(),
    )
}
