//! One module per reproduced figure / ablation (see the crate-level table).

mod ablation_gz;
mod ablation_localizers;
mod ablation_mismatch;
mod attack_showcase;
mod deployment_figures;
mod fig4;
mod fig56;
mod fig7;
mod fig8;
mod fig9;

pub use ablation_gz::ablation_gz_table;
pub use ablation_localizers::ablation_localizers;
pub use ablation_mismatch::ablation_model_mismatch;
pub use attack_showcase::attack_showcase;
pub use deployment_figures::deployment_figures;
pub use fig4::fig4_roc_metrics;
pub use fig56::fig56_roc_attacks;
pub use fig7::fig7_dr_vs_damage;
pub use fig8::fig8_dr_vs_compromise;
pub use fig9::fig9_dr_vs_density;

/// The false-positive budget the paper fixes for Figures 7–9.
pub const PAPER_FP_BUDGET: f64 = 0.01;

/// The compromised-neighbour fraction used by most figures (x = 10 %).
pub const PAPER_COMPROMISED_FRACTION: f64 = 0.10;
