//! Mixed-attack-class workload (grid-native scenario E13).
//!
//! The paper evaluates each attack class in isolation, but a deployed
//! detector faces a *population* of adversaries: some constrained to
//! silence-only capabilities (Dec-Only), some with full forging power
//! (Dec-Bounded). An [`AttackMix`] assigns classes to victims by weight
//! inside one score distribution — a workload the old per-point harness
//! could only fake by running every class separately and re-weighting
//! offline (which mis-states any non-linear operating point, e.g. DR at a
//! shared threshold). One grid compares the pure classes against two
//! mixtures across the damage sweep.

use crate::config::EvalConfig;
use crate::experiments::{standard_axis, PAPER_COMPROMISED_FRACTION, PAPER_FP_BUDGET};
use crate::report::{FigureReport, Series};
use crate::scenario::{AttackMix, ParamGrid, ScenarioRunner, ScenarioSpec, SubstrateCache};
use lad_attack::AttackClass;
use lad_core::MetricKind;

/// Degrees of damage swept.
pub const DAMAGE_SWEEP: [f64; 4] = [40.0, 80.0, 120.0, 160.0];

/// The attack mixes compared (two pure, two genuinely mixed).
pub fn workload_mixes() -> Vec<AttackMix> {
    vec![
        AttackMix::pure(AttackClass::DecBounded),
        AttackMix::pure(AttackClass::DecOnly),
        AttackMix::weighted(
            "mixed-50-50",
            vec![(AttackClass::DecBounded, 1), (AttackClass::DecOnly, 1)],
        ),
        AttackMix::weighted(
            "bounded-heavy-3-1",
            vec![(AttackClass::DecBounded, 3), (AttackClass::DecOnly, 1)],
        ),
    ]
}

/// The mixed-workload scenario.
pub fn mixed_attacks_spec(base: &EvalConfig) -> ScenarioSpec {
    ScenarioSpec::new(
        "mixed_attacks",
        "Detection rate under mixed attack-class workloads",
        standard_axis(base),
        ParamGrid {
            metrics: vec![MetricKind::Diff],
            attacks: workload_mixes(),
            damages: DAMAGE_SWEEP.to_vec(),
            fractions: vec![PAPER_COMPROMISED_FRACTION],
        },
        base.sampling_plan(),
    )
}

/// Evaluates the mixed-attack workload: one series per mix over the damage
/// sweep, detection rate at the paper's FP = 1 % budget.
pub fn mixed_attack_workload(base: &EvalConfig, cache: &SubstrateCache) -> FigureReport {
    let spec = mixed_attacks_spec(base);
    let result = ScenarioRunner::with_cache(&spec, cache).run();
    let dep = result.single();

    let mut report = FigureReport::new(
        spec.id,
        spec.title,
        "degree of damage D (m)",
        "detection rate at FP <= 1%",
    );
    report.push_note(format!(
        "FP = {:.0}%, x = {:.0}%, m = {}, M = Diff metric",
        PAPER_FP_BUDGET * 100.0,
        PAPER_COMPROMISED_FRACTION * 100.0,
        dep.substrate.knowledge().group_size()
    ));

    for mix in workload_mixes() {
        let points: Vec<(f64, f64)> = DAMAGE_SWEEP
            .iter()
            .map(|&d| {
                let cell = dep
                    .find_cell(MetricKind::Diff, mix.label(), d, PAPER_COMPROMISED_FRACTION)
                    .expect("cell is in the grid");
                (d, dep.detection_rate(cell, PAPER_FP_BUDGET))
            })
            .collect();
        report.push_series(Series::new(mix.label().to_string(), points));
    }

    // Headline: the AUC gap between the pure classes and the 50/50 mix at a
    // representative damage level.
    let auc = |label: &str| {
        let cell = dep
            .find_cell(MetricKind::Diff, label, 120.0, PAPER_COMPROMISED_FRACTION)
            .expect("cell is in the grid");
        dep.roc(cell).auc()
    };
    report.push_note(format!(
        "AUC at D=120: dec-bounded {:.3}, mixed-50-50 {:.3}, dec-only {:.3}",
        auc("dec-bounded"),
        auc("mixed-50-50"),
        auc("dec-only")
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_workloads_sit_between_the_pure_classes() {
        let report = mixed_attack_workload(&EvalConfig::bench(), &SubstrateCache::new());
        assert_eq!(report.series.len(), 4);
        let at_d = |label: &str, idx: usize| report.series_by_label(label).unwrap().points[idx].1;
        for (idx, d) in DAMAGE_SWEEP.iter().enumerate() {
            let (bounded, only) = (at_d("dec-bounded", idx), at_d("dec-only", idx));
            let mixed = at_d("mixed-50-50", idx);
            // Dec-Only is the easier class; a mix must not beat it or lose to
            // the harder pure class by more than sampling noise.
            assert!(
                mixed + 0.15 >= bounded.min(only) && mixed <= bounded.max(only) + 0.15,
                "D={d}: mixed {mixed} outside [{bounded}, {only}]"
            );
        }
        assert!(report.notes.iter().any(|n| n.starts_with("AUC at D=120")));
    }
}
