//! Figure 9: detection rate vs network density (DR-m-x-D).
//!
//! Setup (paper §7.8): FP = 1 %, Diff metric, Dec-Bounded attacks; panels for
//! D ∈ {80, 100, 160}, curves for x ∈ {10, 20, 30}%, and the x axis sweeps
//! the group size m. Unlike the other figures this one needs a separate
//! deployment (and separate clean-score collection) per density, so it builds
//! its own [`EvalContext`] per m value.

use crate::config::EvalConfig;
use crate::experiments::PAPER_FP_BUDGET;
use crate::report::{FigureReport, Series};
use crate::runner::EvalContext;
use lad_attack::AttackClass;
use lad_core::MetricKind;

/// Degrees of damage (one paper panel each).
pub const DAMAGE_LEVELS: [f64; 3] = [80.0, 100.0, 160.0];

/// Compromised-neighbour fractions (one curve each).
pub const FRACTIONS: [f64; 3] = [0.10, 0.20, 0.30];

/// Reproduces Figure 9 for the given densities (group sizes m).
///
/// The paper sweeps m from below 100 up to 1000; the `reproduce` binary uses
/// `[100, 300, 600, 1000]` in paper mode and a reduced list in quick mode.
pub fn fig9_dr_vs_density(base: &EvalConfig, group_sizes: &[usize]) -> FigureReport {
    let mut report = FigureReport::new(
        "fig9",
        "Detection rate vs network density (DR-m-x-D)",
        "nodes per deployment group m",
        "detection rate",
    );
    report.push_note(format!(
        "FP = {:.0}%, M = Diff metric, T = Dec-Bounded, densities = {group_sizes:?}",
        PAPER_FP_BUDGET * 100.0
    ));

    // One context per density; each context re-trains the clean scores, which
    // is what makes localization accuracy (and therefore the thresholds)
    // density-dependent — the effect §7.8 describes.
    let contexts: Vec<(usize, EvalContext)> = group_sizes
        .iter()
        .map(|&m| (m, EvalContext::new(base.with_group_size(m))))
        .collect();

    for &d in &DAMAGE_LEVELS {
        for &x in &FRACTIONS {
            let points: Vec<(f64, f64)> = contexts
                .iter()
                .map(|(m, ctx)| {
                    (
                        *m as f64,
                        ctx.detection_rate(
                            MetricKind::Diff,
                            AttackClass::DecBounded,
                            d,
                            x,
                            PAPER_FP_BUDGET,
                        ),
                    )
                })
                .collect();
            report.push_series(Series::new(format!("D={d:.0} x={:.0}%", x * 100.0), points));
        }
    }

    for (m, ctx) in &contexts {
        let errors = ctx.clean_localization_errors();
        let mean_err = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
        report.push_note(format!(
            "m = {m}: mean clean localization error = {mean_err:.1} m over {} samples",
            errors.len()
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_improves_detection_for_moderate_damage() {
        let base = EvalConfig::bench();
        let report = fig9_dr_vs_density(&base, &[40, 120]);
        // 3 damage levels × 3 fractions.
        assert_eq!(report.series.len(), 9);
        let s = report.series_by_label("D=100 x=10%").unwrap();
        assert_eq!(s.points.len(), 2);
        let (dr_sparse, dr_dense) = (s.points[0].1, s.points[1].1);
        // Denser networks localize better, so detection should not get worse.
        assert!(
            dr_dense + 0.15 >= dr_sparse,
            "density should help: sparse {dr_sparse}, dense {dr_dense}"
        );
        // Localization-error notes are attached for every density.
        assert!(
            report
                .notes
                .iter()
                .filter(|n| n.starts_with("m = "))
                .count()
                == 2
        );
    }
}
