//! Figure 9: detection rate vs network density (DR-m-x-D).
//!
//! Setup (paper §7.8): FP = 1 %, Diff metric, Dec-Bounded attacks; panels for
//! D ∈ {80, 100, 160}, curves for x ∈ {10, 20, 30}%, and the x axis sweeps
//! the group size m. Each density is one **deployment axis** of a single
//! scenario — re-training the clean scores per density is what makes
//! localization accuracy (and therefore the thresholds) density-dependent,
//! the effect §7.8 describes — and the whole `densities × D × x` grid fans
//! out on one pool.

use crate::config::EvalConfig;
use crate::experiments::PAPER_FP_BUDGET;
use crate::report::{FigureReport, Series};
use crate::scenario::{
    AttackMix, DeploymentAxis, ParamGrid, ScenarioRunner, ScenarioSpec, SubstrateCache,
};
use lad_attack::AttackClass;
use lad_core::MetricKind;

/// Degrees of damage (one paper panel each).
pub const DAMAGE_LEVELS: [f64; 3] = [80.0, 100.0, 160.0];

/// Compromised-neighbour fractions (one curve each).
pub const FRACTIONS: [f64; 3] = [0.10, 0.20, 0.30];

/// The scenario Figure 9 sweeps: one deployment axis per density.
pub fn fig9_spec(base: &EvalConfig, group_sizes: &[usize]) -> ScenarioSpec {
    let axes: Vec<DeploymentAxis> = group_sizes
        .iter()
        .map(|&m| DeploymentAxis::new(format!("m={m}"), base.deployment.with_group_size(m)))
        .collect();
    ScenarioSpec::new(
        "fig9",
        "Detection rate vs network density (DR-m-x-D)",
        axes[0].clone(),
        ParamGrid {
            metrics: vec![MetricKind::Diff],
            attacks: vec![AttackMix::pure(AttackClass::DecBounded)],
            damages: DAMAGE_LEVELS.to_vec(),
            fractions: FRACTIONS.to_vec(),
        },
        base.sampling_plan(),
    )
    .with_deployments(axes)
}

/// Reproduces Figure 9 for the given densities (group sizes m).
///
/// The paper sweeps m from below 100 up to 1000; the `reproduce` binary uses
/// `[100, 300, 600, 1000]` in paper mode and a reduced list in quick mode.
pub fn fig9_dr_vs_density(
    base: &EvalConfig,
    group_sizes: &[usize],
    cache: &SubstrateCache,
) -> FigureReport {
    assert!(!group_sizes.is_empty(), "need at least one density");
    let spec = fig9_spec(base, group_sizes);
    let result = ScenarioRunner::with_cache(&spec, cache).run();

    let mut report = FigureReport::new(
        spec.id,
        spec.title,
        "nodes per deployment group m",
        "detection rate",
    );
    report.push_note(format!(
        "FP = {:.0}%, M = Diff metric, T = Dec-Bounded, densities = {group_sizes:?}",
        PAPER_FP_BUDGET * 100.0
    ));

    for &d in &DAMAGE_LEVELS {
        for &x in &FRACTIONS {
            let points: Vec<(f64, f64)> = group_sizes
                .iter()
                .zip(&result.deployments)
                .map(|(&m, dep)| {
                    let cell = dep
                        .find_cell(MetricKind::Diff, "dec-bounded", d, x)
                        .expect("cell is in the grid");
                    (m as f64, dep.detection_rate(cell, PAPER_FP_BUDGET))
                })
                .collect();
            report.push_series(Series::new(format!("D={d:.0} x={:.0}%", x * 100.0), points));
        }
    }

    for (m, dep) in group_sizes.iter().zip(&result.deployments) {
        let errors = dep.substrate.clean_error_summary();
        report.push_note(format!(
            "m = {m}: mean clean localization error = {:.1} m over {} samples",
            errors.mean, errors.count
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_improves_detection_for_moderate_damage() {
        let base = EvalConfig::bench();
        let report = fig9_dr_vs_density(&base, &[40, 120], &SubstrateCache::new());
        // 3 damage levels × 3 fractions.
        assert_eq!(report.series.len(), 9);
        let s = report.series_by_label("D=100 x=10%").unwrap();
        assert_eq!(s.points.len(), 2);
        let (dr_sparse, dr_dense) = (s.points[0].1, s.points[1].1);
        // Denser networks localize better, so detection should not get worse.
        assert!(
            dr_dense + 0.15 >= dr_sparse,
            "density should help: sparse {dr_sparse}, dense {dr_dense}"
        );
        // Localization-error notes are attached for every density.
        assert!(
            report
                .notes
                .iter()
                .filter(|n| n.starts_with("m = "))
                .count()
                == 2
        );
    }
}
