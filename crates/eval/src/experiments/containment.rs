//! Containment: how fast does the closed loop identify and neutralise an
//! attack — and what does that cost in collateral revocations?
//!
//! The `temporal` experiment measures *time-to-detection*: the first
//! alarm. This experiment measures what matters operationally once a
//! response layer exists: **time-to-containment** — how many rounds after
//! attack onset until each persistent attacker is *revoked* (and therefore
//! silent), driven end to end through the real serving stack:
//!
//! ```text
//! TrafficModel → ServeRuntime (shard, score, decide)
//!             → ResponseController (journal → suspicion → ThresholdRevoke)
//!             → ResponseFilter installed back into the runtime
//!             → revoked attackers fall silent in the traffic model
//! ```
//!
//! At one calibrated per-round false-alarm target (shared with `temporal`)
//! and one calibrated collateral budget, the experiment compares a
//! **one-shot-fed** response (the paper's detector applied every round)
//! with a **CUSUM-fed** response across the damage × compromised-fraction
//! grid, reporting per cell:
//!
//! * the median per-attacker time-to-containment (rounds from onset to
//!   revocation, censored at `HORIZON + 1`; without a response layer every
//!   attacker is censored *by construction* — nothing ever revokes),
//! * identification precision and recall (revoked ∩ attackers vs revoked,
//!   vs attackers), and
//! * the collateral-revocation rate (honest nodes revoked / honest nodes).

use crate::config::EvalConfig;
use crate::experiments::{median, standard_substrate};
use crate::report::{FigureReport, Series};
use crate::scenario::SubstrateCache;
use lad_attack::{AttackClass, AttackConfig};
use lad_core::MetricKind;
use lad_net::NodeId;
use lad_response::{clean_alarm_rounds, ResponseConfig, ResponseController, ThresholdRevoke};
use lad_serve::{AttackTimeline, ServeConfig, ServeRuntime, TrafficModel};
use lad_stats::seeds::derive_seed;
use lad_stats::SequentialDetector;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Degrees of damage swept on the x axis (the same frontier band as
/// `temporal`). A containment-specific finding falls out of the
/// comparison: once an attack is blatant enough to fire the one-shot rule
/// at all, the one-shot-fed loop *contains faster* than the CUSUM-fed one
/// — the memoryless rule re-fires every attacked round, while the CUSUM
/// must re-accumulate to its threshold after each reset-on-alarm, so its
/// earlier *first* alarm (the `temporal` win) does not translate into
/// faster *repeat* evidence. The suspicion layer integrates repetition.
pub const DAMAGE_SWEEP: [f64; 3] = [100.0, 125.0, 150.0];

/// Compromised-neighbour fractions (one containment curve per detector per
/// fraction). Beyond x ≈ 20 % the greedy taint keeps a growing share of
/// attackers below any equal-FAR detector permanently — containment
/// inherits detection's stealth frontier.
pub const FRACTIONS: [f64; 2] = [0.10, 0.20];

/// Clean warm-up rounds: detector calibration *and* revocation-budget
/// calibration both happen here.
pub const WARMUP_ROUNDS: u64 = 40;

/// Attacked rounds after onset (the containment measurement horizon).
pub const HORIZON: u64 = 60;

/// Round at which the compromised half of the population turns hostile
/// (after the warm-up, so everything measured is held out).
pub const ONSET: u64 = WARMUP_ROUNDS;

/// The calibrated per-round false-alarm target shared by both rules (the
/// `temporal` target).
pub const TARGET_FAR: f64 = 0.005;

/// The calibrated collateral budget: at most this fraction of clean nodes
/// may ever cross the revocation budget on the calibration streams.
pub const TARGET_COLLATERAL: f64 = 0.01;

/// The outcome of one closed-loop cell.
struct CellOutcome {
    /// Median per-attacker time-to-containment (censored at HORIZON + 1).
    median_ttc: f64,
    /// Fraction of attackers revoked within the horizon.
    recall: f64,
    /// Fraction of revoked nodes that were attackers (1.0 when nothing was
    /// revoked — no wrong revocations happened).
    precision: f64,
    /// Honest nodes revoked / honest nodes.
    collateral: f64,
}

/// Runs one closed-loop cell: serve the attacked trace through a real
/// runtime with a `ThresholdRevoke` response controller, feeding
/// revocations back into the traffic model (revoked attackers fall
/// silent), and score the containment outcome against the ground-truth
/// attacker set.
fn run_cell(
    engine: &Arc<lad_core::engine::LadEngine>,
    network: &lad_net::Network,
    clean: &TrafficModel,
    detector: SequentialDetector,
    policy: ThresholdRevoke,
    response_config: ResponseConfig,
    attack: AttackConfig,
) -> CellOutcome {
    let mut traffic = clean.with_attack(AttackTimeline::Onset { at: ONSET }, attack, 0.5);
    let population = traffic.nodes();
    let attackers: BTreeSet<u32> = population
        .iter()
        .zip(traffic.attacked_mask(ONSET))
        .filter_map(|(node, hostile)| hostile.then_some(node.0))
        .collect();
    assert!(!attackers.is_empty(), "cells have attackers");

    let runtime = ServeRuntime::start(engine.clone(), ServeConfig::new(MetricKind::Diff, detector))
        .expect("runtime starts");
    let mut controller = ResponseController::new(response_config).with_policy(Box::new(policy));

    let mut revocation_round: Vec<(u32, u64)> = Vec::new();
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut rows = lad_net::ObservationBatch::new(engine.knowledge().group_count());
    for round in 0..ONSET + HORIZON {
        traffic.round_rows(network, round, &mut nodes, &mut rows);
        runtime.submit_rows(round, &nodes, &rows);
        let outcome = controller.step(&runtime, round);
        if !outcome.newly_revoked.is_empty() {
            for node in &outcome.newly_revoked {
                revocation_round.push((node.0, round));
            }
            // Close the loop: revoked nodes fall silent from the next round.
            traffic.revoke_nodes(&outcome.newly_revoked, round + 1);
        }
    }
    runtime.shutdown();

    let revoked: BTreeSet<u32> = revocation_round.iter().map(|&(n, _)| n).collect();
    let revoked_attackers = revoked.intersection(&attackers).count();
    let honest = population.len() - attackers.len();
    let collateral_revoked = revoked.len() - revoked_attackers;

    let mut ttcs: Vec<f64> = attackers
        .iter()
        .map(|&a| {
            revocation_round
                .iter()
                .find(|&&(n, _)| n == a)
                // A node revoked during the warm-up (a collateral call on
                // a would-be attacker) is contained before it ever
                // attacks: TTC 1, not an underflow.
                .map(|&(_, round)| (round.saturating_sub(ONSET) + 1) as f64)
                .unwrap_or((HORIZON + 1) as f64)
        })
        .collect();
    CellOutcome {
        median_ttc: median(&mut ttcs).expect("attackers exist"),
        recall: revoked_attackers as f64 / attackers.len() as f64,
        precision: if revoked.is_empty() {
            1.0
        } else {
            revoked_attackers as f64 / revoked.len() as f64
        },
        collateral: if honest == 0 {
            0.0
        } else {
            collateral_revoked as f64 / honest as f64
        },
    }
}

/// The containment experiment: closed-loop time-to-containment,
/// identification precision/recall and collateral-revocation rate for
/// one-shot-fed vs CUSUM-fed response at equal calibrated FAR, across the
/// damage × compromise grid on the shared standard-deployment substrate.
pub fn containment(base: &EvalConfig, cache: &SubstrateCache) -> FigureReport {
    let substrate = standard_substrate(base, cache);
    let engine_ref = substrate.engine();
    let network = &substrate.networks()[0];
    let seed = derive_seed(base.seed, &[0x0C04_7A14]);

    let population = crate::scenario::sample_node_ids(
        network,
        base.clean_samples_per_network,
        derive_seed(seed, &[1]),
    );
    let clean = TrafficModel::clean(network, engine_ref, population, seed);

    // Both rules calibrated at the same per-round FAR on the same clean
    // warm-up; each rule's revocation budget calibrated on *its own* clean
    // alarm behaviour at the same collateral target — equal footing end to
    // end.
    let warmup = clean.score_streams(network, engine_ref, MetricKind::Diff, 0..WARMUP_ROUNDS);
    let streams = || warmup.iter().map(Vec::as_slice);
    let detectors = [
        SequentialDetector::calibrate_one_shot(streams(), TARGET_FAR),
        SequentialDetector::calibrate_cusum(streams(), TARGET_FAR),
    ];
    // Slower decay than the library default: the CUSUM re-fires every
    // ~10–15 rounds on a frontier attacker (threshold / per-round drift),
    // and suspicion must integrate across that cadence to separate repeat
    // offenders from one-off false alarms.
    let response_config = ResponseConfig {
        decay: 0.9,
        ..ResponseConfig::default()
    };
    let policies: Vec<ThresholdRevoke> = detectors
        .iter()
        .map(|detector| {
            ThresholdRevoke::calibrate(
                &clean_alarm_rounds(detector, &warmup, true),
                WARMUP_ROUNDS,
                response_config,
                TARGET_COLLATERAL,
            )
        })
        .collect();

    // The serving runtime wants an `Arc<LadEngine>`; the substrate owns
    // its engine by value, so rebuild an identical one through the
    // versioned artifact (bit-identical scoring — the artifact round trip
    // is asserted by the engine test suite).
    let engine = Arc::new(
        lad_core::engine::LadEngine::from_json(&engine_ref.to_json())
            .expect("substrate engine round-trips"),
    );

    let mut report = FigureReport::new(
        "containment",
        "Time-to-containment: closed-loop revocation, one-shot-fed vs CUSUM-fed",
        "degree of damage D (m)",
        "median rounds from onset to attacker revocation (censored at horizon+1)",
    );
    report.push_note(format!(
        "per-round false-alarm target {TARGET_FAR}, collateral target {TARGET_COLLATERAL}; {} \
         reporting nodes (half turn hostile at round {ONSET}); warm-up {WARMUP_ROUNDS} rounds, \
         horizon {HORIZON} rounds; Diff metric, Dec-Bounded attacks; ThresholdRevoke budgets: \
         one-shot {:.2}, cusum {:.2} (suspicion decay {})",
        clean.nodes().len(),
        policies[0].budget,
        policies[1].budget,
        response_config.decay,
    ));
    report.push_note(format!(
        "without a response layer every attacker is censored at {} by construction — nothing \
         ever revokes",
        HORIZON + 1
    ));

    for (detector, policy) in detectors.iter().zip(&policies) {
        let mut worst_precision = f64::INFINITY;
        let mut worst_collateral: f64 = 0.0;
        let mut best_recall: f64 = 0.0;
        for &fraction in &FRACTIONS {
            let mut curve = Vec::new();
            for &damage in &DAMAGE_SWEEP {
                let outcome = run_cell(
                    &engine,
                    network,
                    &clean,
                    *detector,
                    *policy,
                    response_config,
                    AttackConfig {
                        degree_of_damage: damage,
                        compromised_fraction: fraction,
                        class: AttackClass::DecBounded,
                        targeted_metric: MetricKind::Diff,
                    },
                );
                curve.push((damage, outcome.median_ttc));
                worst_precision = worst_precision.min(outcome.precision);
                worst_collateral = worst_collateral.max(outcome.collateral);
                best_recall = best_recall.max(outcome.recall);
            }
            report.push_series(Series::new(
                format!("{} x={:.0}%", detector.name(), fraction * 100.0),
                curve,
            ));
        }
        report.push_note(format!(
            "{}-fed response: identification precision >= {:.2} across the grid, best-cell \
             recall {:.2}, collateral-revocation rate <= {:.4} of honest nodes",
            detector.name(),
            if worst_precision.is_finite() {
                worst_precision
            } else {
                1.0
            },
            best_recall,
            worst_collateral,
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_label(detector: &str, fraction: f64) -> String {
        format!("{detector} x={:.0}%", fraction * 100.0)
    }

    #[test]
    fn closed_loop_contains_persistent_attackers_with_high_precision() {
        let report = containment(&EvalConfig::bench(), &SubstrateCache::new());
        assert_eq!(report.series.len(), 2 * FRACTIONS.len());
        let censored = (HORIZON + 1) as f64;

        // The CUSUM-fed response contains the blatant-attack cells in
        // finite time (vs censored-by-construction without response), and
        // containment never gets slower as damage grows.
        let mut cusum_finite = false;
        for &fraction in &FRACTIONS {
            let cusum = report
                .series_by_label(&series_label("cusum", fraction))
                .unwrap();
            for (i, &(_, ttc)) in cusum.points.iter().enumerate() {
                assert!(ttc >= 1.0 && ttc <= censored);
                cusum_finite |= ttc < censored;
                if i > 0 {
                    assert!(
                        ttc <= cusum.points[i - 1].1 + 1e-9,
                        "containment slows down with damage: {:?}",
                        cusum.points
                    );
                }
            }
            // The biggest-damage cell must be contained in well under the
            // horizon.
            assert!(
                cusum.points.last().unwrap().1 < censored,
                "D={} x={fraction} not contained: {:?}",
                DAMAGE_SWEEP[DAMAGE_SWEEP.len() - 1],
                cusum.points
            );
        }
        assert!(cusum_finite, "median TTC must be finite somewhere");
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("censored") && n.contains("without a response layer")),
            "the censored-without-response baseline must be stated"
        );

        // Identification precision >= 0.9 at the default calibrated budget
        // for the headline CUSUM-fed loop (worst cell across the grid; the
        // one-shot-fed loop can revoke *nothing but* its single collateral
        // node on cells below its detection frontier, which degenerates
        // the ratio), and the collateral rate is reported for both rules.
        for rule in ["one-shot", "cusum"] {
            let note = report
                .notes
                .iter()
                .find(|n| n.starts_with(&format!("{rule}-fed response")))
                .expect("per-detector containment note");
            assert!(
                note.contains("collateral-revocation rate"),
                "collateral must be reported"
            );
            if rule == "cusum" {
                let precision: f64 = note
                    .split("precision >= ")
                    .nth(1)
                    .and_then(|s| s.split(' ').next())
                    .and_then(|s| s.trim_end_matches(',').parse().ok())
                    .expect("note carries precision");
                assert!(
                    precision >= 0.9,
                    "{rule}: identification precision {precision} < 0.9"
                );
            }
        }
    }
}
