//! Figures 1 and 2: the deployment layout and the per-group placement pdf.
//!
//! Figure 1 of the paper shows the grid of deployment points over the
//! 1000 m × 1000 m area; Figure 2 shows the two-dimensional Gaussian
//! placement pdf of one group (deployment point (150, 150), σ = 50).
//! This experiment reproduces both as data series and attaches the topology
//! statistics of a concrete simulated deployment.

use crate::report::{FigureReport, Series};
use crate::scenario::Substrate;
use lad_net::topology::TopologyStats;
use lad_stats::IsotropicGaussian2d;

/// Reproduces Figures 1 and 2 from a scenario substrate (its deployment
/// knowledge and first simulated network).
pub fn deployment_figures(ctx: &Substrate) -> FigureReport {
    let knowledge = ctx.knowledge();
    let config = knowledge.config();
    let mut report = FigureReport::new(
        "fig1_2",
        "Deployment points (Fig. 1) and per-group placement pdf (Fig. 2)",
        "x (m)",
        "y (m) / pdf",
    );

    // Figure 1: the deployment points themselves.
    let points: Vec<(f64, f64)> = knowledge
        .layout()
        .deployment_points()
        .iter()
        .map(|p| (p.x, p.y))
        .collect();
    report.push_series(Series::new("deployment points", points));

    // Figure 2: a 1-D slice through the 2-D Gaussian pdf of the group whose
    // deployment point is closest to (150, 150), sampled along y = y_dp.
    let group = knowledge
        .layout()
        .nearest_group(lad_geometry::Point2::new(150.0, 150.0));
    let dp = knowledge.layout().deployment_point(group);
    let pdf = IsotropicGaussian2d::new(dp.x, dp.y, config.sigma);
    let slice: Vec<(f64, f64)> = (0..=120)
        .map(|i| {
            let x = dp.x - 3.0 * config.sigma + i as f64 * (6.0 * config.sigma / 120.0);
            (x, pdf.pdf(x, dp.y))
        })
        .collect();
    report.push_series(Series::new(
        format!("placement pdf slice through ({:.0}, {:.0})", dp.x, dp.y),
        slice,
    ));
    report.push_note(format!(
        "peak pdf value = {:.3e} (paper Fig. 2 shows ≈ 6.4e-5 for sigma = 50)",
        pdf.pdf(dp.x, dp.y)
    ));

    // Topology statistics of the first simulated deployment.
    if let Some(network) = ctx.networks().first() {
        let stats = TopologyStats::compute(network);
        report.push_note(format!(
            "simulated deployment: {} nodes, mean degree {:.1}, isolated {}, mean drift {:.1} m, {:.1}% outside the area",
            stats.node_count,
            stats.degree.mean,
            stats.isolated_nodes,
            stats.drift.mean,
            stats.out_of_area_fraction * 100.0
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use crate::experiments::standard_substrate;
    use crate::scenario::SubstrateCache;

    #[test]
    fn deployment_figure_contains_grid_and_pdf() {
        let ctx = standard_substrate(&EvalConfig::bench(), &SubstrateCache::new());
        let report = deployment_figures(&ctx);
        let grid = report.series_by_label("deployment points").unwrap();
        assert_eq!(grid.points.len(), ctx.knowledge().group_count());
        // The pdf slice peaks at the deployment point and is symmetric-ish.
        let pdf = &report.series[1];
        let max = pdf.points.iter().map(|(_, y)| *y).fold(0.0, f64::max);
        let sigma = ctx.knowledge().config().sigma;
        let expected_peak = 1.0 / (2.0 * std::f64::consts::PI * sigma * sigma);
        assert!((max - expected_peak).abs() < 1e-6);
        assert!(report.notes.iter().any(|n| n.contains("mean degree")));
    }
}
