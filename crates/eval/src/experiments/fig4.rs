//! Figure 4: ROC curves for the three detection metrics (DR-FP-M-D).
//!
//! Setup (paper §7.4): x = 10 %, m = 300, Dec-Bounded attacks; one panel per
//! degree of damage D ∈ {80, 120, 160}; one curve per metric. Declared as a
//! `metrics × {Dec-Bounded} × D × {0.1}` scenario grid.

use crate::config::EvalConfig;
use crate::experiments::{standard_axis, PAPER_COMPROMISED_FRACTION};
use crate::report::{FigureReport, Series};
use crate::scenario::{AttackMix, ParamGrid, ScenarioRunner, ScenarioSpec, SubstrateCache};
use lad_attack::AttackClass;
use lad_core::MetricKind;

/// Degrees of damage shown in Figure 4.
pub const DAMAGE_LEVELS: [f64; 3] = [80.0, 120.0, 160.0];

/// The scenario Figure 4 sweeps.
pub fn fig4_spec(base: &EvalConfig) -> ScenarioSpec {
    ScenarioSpec::new(
        "fig4",
        "ROC curves for different detection metrics and degrees of damage (DR-FP-M-D)",
        standard_axis(base),
        ParamGrid {
            metrics: MetricKind::ALL.to_vec(),
            attacks: vec![AttackMix::pure(AttackClass::DecBounded)],
            damages: DAMAGE_LEVELS.to_vec(),
            fractions: vec![PAPER_COMPROMISED_FRACTION],
        },
        base.sampling_plan(),
    )
}

/// Reproduces Figure 4.
pub fn fig4_roc_metrics(base: &EvalConfig, cache: &SubstrateCache) -> FigureReport {
    let spec = fig4_spec(base);
    let result = ScenarioRunner::with_cache(&spec, cache).run();
    let dep = result.single();

    let mut report =
        FigureReport::new(spec.id, spec.title, "false positive rate", "detection rate");
    report.push_note(format!(
        "x = {:.0}%, m = {}, T = Dec-Bounded",
        PAPER_COMPROMISED_FRACTION * 100.0,
        dep.substrate.knowledge().group_size()
    ));

    for &d in &DAMAGE_LEVELS {
        for metric in MetricKind::ALL {
            let cell = dep
                .find_cell(metric, "dec-bounded", d, PAPER_COMPROMISED_FRACTION)
                .expect("cell is in the grid");
            let roc = dep.roc(cell);
            let points: Vec<(f64, f64)> = roc
                .points()
                .iter()
                .map(|p| (p.false_positive_rate, p.detection_rate))
                .collect();
            report.push_series(Series::new(format!("D={d:.0} {}", metric.name()), points));
            report.push_note(format!(
                "D={d:.0} {}: AUC = {:.4}, DR@FP<=5% = {:.4}",
                metric.name(),
                roc.auc(),
                roc.detection_rate_at_fp(0.05)
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_matches_the_paper() {
        let base = EvalConfig::bench();
        let cache = SubstrateCache::new();
        let report = fig4_roc_metrics(&base, &cache);
        // 3 damage levels × 3 metrics.
        assert_eq!(report.series.len(), 9);

        let result = ScenarioRunner::with_cache(&fig4_spec(&base), &cache).run();
        let dep = result.single();
        let dr = |metric: MetricKind, d: f64| {
            let cell = dep.find_cell(metric, "dec-bounded", d, 0.10).unwrap();
            dep.detection_rate(cell, 0.10)
        };
        // Detection gets easier as D grows (compare Diff curves at FP <= 10%).
        assert!(dr(MetricKind::Diff, 160.0) + 1e-9 >= dr(MetricKind::Diff, 80.0));

        // The Diff metric should dominate (or at least not lose badly to) the
        // probability metric at the large-damage operating point.
        let auc = |metric: MetricKind| {
            let cell = dep.find_cell(metric, "dec-bounded", 160.0, 0.10).unwrap();
            dep.roc(cell).auc()
        };
        assert!(auc(MetricKind::Diff) + 0.05 >= auc(MetricKind::Probability));
    }
}
