//! Figure 4: ROC curves for the three detection metrics (DR-FP-M-D).
//!
//! Setup (paper §7.4): x = 10 %, m = 300, Dec-Bounded attacks; one panel per
//! degree of damage D ∈ {80, 120, 160}; one curve per metric.

use crate::experiments::PAPER_COMPROMISED_FRACTION;
use crate::report::{FigureReport, Series};
use crate::runner::EvalContext;
use lad_attack::AttackClass;
use lad_core::MetricKind;

/// Degrees of damage shown in Figure 4.
pub const DAMAGE_LEVELS: [f64; 3] = [80.0, 120.0, 160.0];

/// Reproduces Figure 4.
pub fn fig4_roc_metrics(ctx: &EvalContext) -> FigureReport {
    let mut report = FigureReport::new(
        "fig4",
        "ROC curves for different detection metrics and degrees of damage (DR-FP-M-D)",
        "false positive rate",
        "detection rate",
    );
    report.push_note(format!(
        "x = {:.0}%, m = {}, T = Dec-Bounded",
        PAPER_COMPROMISED_FRACTION * 100.0,
        ctx.knowledge().group_size()
    ));

    for &d in &DAMAGE_LEVELS {
        for metric in MetricKind::ALL {
            let set = ctx.score_set(
                metric,
                AttackClass::DecBounded,
                d,
                PAPER_COMPROMISED_FRACTION,
            );
            let roc = set.roc();
            let points: Vec<(f64, f64)> = roc
                .points()
                .iter()
                .map(|p| (p.false_positive_rate, p.detection_rate))
                .collect();
            report.push_series(Series::new(format!("D={d:.0} {}", metric.name()), points));
            report.push_note(format!(
                "D={d:.0} {}: AUC = {:.4}, DR@FP<=5% = {:.4}",
                metric.name(),
                roc.auc(),
                roc.detection_rate_at_fp(0.05)
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;

    #[test]
    fn fig4_shape_matches_the_paper() {
        let ctx = EvalContext::new(EvalConfig::bench());
        let report = fig4_roc_metrics(&ctx);
        // 3 damage levels × 3 metrics.
        assert_eq!(report.series.len(), 9);

        // Detection gets easier as D grows (compare Diff curves at FP <= 10%).
        let dr = |label: &str| -> f64 {
            let set_d: f64 = label[2..].split(' ').next().unwrap().parse().unwrap();
            let metric = MetricKind::Diff;
            ctx.score_set(metric, lad_attack::AttackClass::DecBounded, set_d, 0.10)
                .detection_rate_at_fp(0.10)
        };
        assert!(dr("D=160 diff") + 1e-9 >= dr("D=80 diff"));

        // The Diff metric should dominate (or at least not lose badly to) the
        // probability metric at the large-damage operating point.
        let diff_set = ctx.score_set(
            MetricKind::Diff,
            lad_attack::AttackClass::DecBounded,
            160.0,
            0.10,
        );
        let prob_set = ctx.score_set(
            MetricKind::Probability,
            lad_attack::AttackClass::DecBounded,
            160.0,
            0.10,
        );
        assert!(diff_set.roc().auc() + 0.05 >= prob_set.roc().auc());
    }
}
