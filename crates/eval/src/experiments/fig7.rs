//! Figure 7: detection rate vs degree of damage (DR-D-x).
//!
//! Setup (paper §7.6): FP = 1 %, m = 300, Diff metric, Dec-Bounded attacks;
//! one curve per compromised-neighbour fraction x ∈ {10, 20, 30}%. Declared
//! as a `{Diff} × {Dec-Bounded} × D × x` grid — all 21 cells evaluate in
//! parallel on one pool.

use crate::config::EvalConfig;
use crate::experiments::{standard_axis, PAPER_FP_BUDGET};
use crate::report::{FigureReport, Series};
use crate::scenario::{AttackMix, ParamGrid, ScenarioRunner, ScenarioSpec, SubstrateCache};
use lad_attack::AttackClass;
use lad_core::MetricKind;

/// The degrees of damage swept on the x axis (paper: 40 … 160).
pub const DAMAGE_SWEEP: [f64; 7] = [40.0, 60.0, 80.0, 100.0, 120.0, 140.0, 160.0];

/// Compromised-neighbour fractions, one per curve.
pub const FRACTIONS: [f64; 3] = [0.10, 0.20, 0.30];

/// The scenario Figure 7 sweeps.
pub fn fig7_spec(base: &EvalConfig) -> ScenarioSpec {
    ScenarioSpec::new(
        "fig7",
        "Detection rate vs degree of damage (DR-D-x)",
        standard_axis(base),
        ParamGrid {
            metrics: vec![MetricKind::Diff],
            attacks: vec![AttackMix::pure(AttackClass::DecBounded)],
            damages: DAMAGE_SWEEP.to_vec(),
            fractions: FRACTIONS.to_vec(),
        },
        base.sampling_plan(),
    )
}

/// Reproduces Figure 7.
pub fn fig7_dr_vs_damage(base: &EvalConfig, cache: &SubstrateCache) -> FigureReport {
    let spec = fig7_spec(base);
    let result = ScenarioRunner::with_cache(&spec, cache).run();
    let dep = result.single();

    let mut report = FigureReport::new(
        spec.id,
        spec.title,
        "degree of damage D (m)",
        "detection rate",
    );
    report.push_note(format!(
        "FP = {:.0}%, m = {}, M = Diff metric, T = Dec-Bounded",
        PAPER_FP_BUDGET * 100.0,
        dep.substrate.knowledge().group_size()
    ));

    for &x in &FRACTIONS {
        let points: Vec<(f64, f64)> = DAMAGE_SWEEP
            .iter()
            .map(|&d| {
                let cell = dep
                    .find_cell(MetricKind::Diff, "dec-bounded", d, x)
                    .expect("cell is in the grid");
                (d, dep.detection_rate(cell, PAPER_FP_BUDGET))
            })
            .collect();
        report.push_series(Series::new(format!("x={:.0}%", x * 100.0), points));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_rate_rises_with_damage_and_reaches_high_values() {
        let report = fig7_dr_vs_damage(&EvalConfig::bench(), &SubstrateCache::new());
        assert_eq!(report.series.len(), 3);
        let x10 = report.series_by_label("x=10%").unwrap();
        assert_eq!(x10.points.len(), DAMAGE_SWEEP.len());
        // The trend: DR at D = 160 must be at least DR at D = 40, and must be
        // substantial (the paper reports near-100%).
        let dr_40 = x10.points[0].1;
        let dr_160 = x10.points.last().unwrap().1;
        assert!(dr_160 + 1e-9 >= dr_40);
        assert!(dr_160 > 0.7, "DR at D=160 should be high, got {dr_160}");
        // More compromised neighbours never helps the defender.
        let x30 = report.series_by_label("x=30%").unwrap();
        let dr_160_x30 = x30.points.last().unwrap().1;
        assert!(dr_160_x30 <= dr_160 + 0.15);
    }
}
