//! Temporal detection: time-to-detection and false-alarm rate of
//! sequential detectors over streaming LAD scores.
//!
//! The paper's evaluation is one-shot — one observation, one verdict. A
//! deployed LAD service sees every node's score *stream*, and the
//! operational questions become: after an attack starts, **how many rounds
//! until the first alarm** (time-to-detection, TTD), and **how many false
//! alarms per 1 000 clean node-rounds** does that speed cost? This
//! experiment compares, at one calibrated per-round false-alarm target,
//!
//! * the **repeated one-shot** baseline (the paper's detector applied every
//!   round),
//! * **CUSUM** (accumulates small persistent shifts), and
//! * **EWMA** (smooths per-round noise)
//!
//! across the damage × compromised-fraction grid, over a
//! [`TrafficModel`] built on the shared evaluation substrate: every round
//! each node hears its neighbourhood through radio loss, re-localizes, and
//! reports; at round [`ONSET`] half the population turns hostile, each
//! hostile node committing to one consistent forged location. The clean
//! half keeps reporting honestly throughout, which is what the false-alarm
//! column is measured on.

use crate::config::EvalConfig;
use crate::experiments::{median, standard_substrate};
use crate::report::{FigureReport, Series};
use crate::scenario::SubstrateCache;
use lad_attack::{AttackClass, AttackConfig};
use lad_core::MetricKind;
use lad_serve::{AttackTimeline, TrafficModel};
use lad_stats::seeds::derive_seed;
use lad_stats::SequentialDetector;

/// Degrees of damage swept on the x axis: the detection-frontier band where
/// sequential accumulation matters (at `x = 10%` the frontier sits near
/// D ≈ 90, at `x = 30%` near D ≈ 125; by D = 140 blatant attacks fire any
/// rule within a few rounds).
pub const DAMAGE_SWEEP: [f64; 4] = [90.0, 110.0, 125.0, 140.0];

/// Compromised-neighbour fractions (one TTD curve per detector per
/// fraction).
pub const FRACTIONS: [f64; 2] = [0.10, 0.30];

/// Clean warm-up rounds the detectors are calibrated on (rounds
/// `0..WARMUP_ROUNDS`).
pub const WARMUP_ROUNDS: u64 = 40;

/// Attacked rounds after onset (the TTD measurement horizon).
pub const HORIZON: u64 = 60;

/// Round at which the compromised half of the population turns hostile.
/// Placed **after** the warm-up so everything measured — false alarms on
/// clean nodes and TTD on attacked ones — happens on rounds the detectors
/// were *not* calibrated on (held-out, not in-sample), while the detectors
/// enter the attack warm (their states carry realistic clean noise from
/// the pre-onset rounds rather than starting at zero).
pub const ONSET: u64 = WARMUP_ROUNDS;

/// The calibrated per-round false-alarm target shared by all three rules.
pub const TARGET_FAR: f64 = 0.005;

/// EWMA smoothing factor.
pub const EWMA_LAMBDA: f64 = 0.25;

/// Replays one node's full stream (rounds `0..ONSET + HORIZON`) with
/// reset-on-alarm and returns its time-to-detection: rounds from [`ONSET`]
/// to the first post-onset alarm, counting the onset round as 1, censored
/// at `HORIZON + 1`. Pre-onset rounds are replayed (so the detector enters
/// the attack with realistic warm state) but never counted.
fn ttd_replay(detector: &SequentialDetector, stream: &[f64]) -> f64 {
    let mut state = detector.initial_state();
    for (round, &score) in stream.iter().enumerate() {
        let alarm = detector.update(&mut state, score);
        if alarm {
            detector.reset(&mut state);
        }
        if alarm && round as u64 >= ONSET {
            return (round as u64 - ONSET + 1) as f64;
        }
    }
    (HORIZON + 1) as f64
}

/// Replays the clean nodes' full streams with reset-on-alarm and returns
/// false alarms per 1 000 node-rounds, counted only on rounds `>= ONSET` —
/// the pre-onset rounds are the calibration data, so alarms there would be
/// in-sample and satisfy the FAR target by construction.
fn far_replay(detector: &SequentialDetector, streams: &[&[f64]]) -> f64 {
    let mut alarms = 0u64;
    let mut rounds = 0u64;
    for stream in streams {
        let mut state = detector.initial_state();
        for (round, &score) in stream.iter().enumerate() {
            let alarm = detector.update(&mut state, score);
            if alarm {
                detector.reset(&mut state);
            }
            if round as u64 >= ONSET {
                rounds += 1;
                if alarm {
                    alarms += 1;
                }
            }
        }
    }
    if rounds == 0 {
        0.0
    } else {
        alarms as f64 * 1000.0 / rounds as f64
    }
}

/// The temporal experiment: TTD and false-alarm curves for one-shot vs
/// CUSUM vs EWMA across the damage × compromise grid, on the shared
/// standard-deployment substrate.
pub fn temporal_detection(base: &EvalConfig, cache: &SubstrateCache) -> FigureReport {
    let substrate = standard_substrate(base, cache);
    let engine = substrate.engine();
    let network = &substrate.networks()[0];
    let seed = derive_seed(base.seed, &[0x7E4_404A1]);

    // The reporting population: the same sampling helper every scenario
    // uses, over the substrate's first network.
    let population = crate::scenario::sample_node_ids(
        network,
        base.clean_samples_per_network,
        derive_seed(seed, &[1]),
    );
    let clean = TrafficModel::clean(network, engine, population, seed);

    // Calibration: per-node clean warm-up streams at one shared target.
    let warmup = clean.score_streams(network, engine, MetricKind::Diff, 0..WARMUP_ROUNDS);
    let streams = || warmup.iter().map(Vec::as_slice);
    let detectors = [
        SequentialDetector::calibrate_one_shot(streams(), TARGET_FAR),
        SequentialDetector::calibrate_cusum(streams(), TARGET_FAR),
        SequentialDetector::calibrate_ewma(streams(), TARGET_FAR, EWMA_LAMBDA),
    ];

    let mut report = FigureReport::new(
        "temporal",
        "Time-to-detection: sequential detectors vs repeated one-shot",
        "degree of damage D (m)",
        "median rounds to first alarm (censored at horizon+1)",
    );
    report.push_note(format!(
        "per-round false-alarm target {TARGET_FAR}; {} reporting nodes (half turn hostile at \
         round {ONSET}); warm-up {WARMUP_ROUNDS} rounds, horizon {HORIZON} rounds; Diff metric, \
         Dec-Bounded attacks; EWMA lambda = {EWMA_LAMBDA}",
        clean.nodes().len(),
    ));

    // The clean/hostile split is the same in every cell (compromise ranks
    // derive from the clean model's seed; every cell uses onset + 50 % of
    // nodes), and clean nodes' reports do not depend on the attack config
    // at all. So the clean half is simulated, scored and FAR-measured
    // exactly once, and each grid cell re-simulates only its hostile half
    // through a dedicated traffic model over just those nodes (per-(round,
    // node) seeds make the hostile reports bit-identical to a full-
    // population model's).
    let population = clean.nodes();
    let hostile_mask = clean
        .with_attack(
            AttackTimeline::Onset { at: ONSET },
            AttackConfig {
                degree_of_damage: DAMAGE_SWEEP[0],
                compromised_fraction: FRACTIONS[0],
                class: AttackClass::DecBounded,
                targeted_metric: MetricKind::Diff,
            },
            0.5,
        )
        .attacked_mask(ONSET);
    let hostile_nodes: Vec<_> = population
        .iter()
        .zip(&hostile_mask)
        .filter_map(|(&node, &hostile)| hostile.then_some(node))
        .collect();
    let hostile_warmup: Vec<&[f64]> = warmup
        .iter()
        .zip(&hostile_mask)
        .filter_map(|(stream, &hostile)| hostile.then_some(stream.as_slice()))
        .collect();
    let hostile_base = TrafficModel::clean(network, engine, hostile_nodes, seed);

    // Clean half: score the post-warm-up tail once, measure each
    // detector's held-out FAR once.
    let clean_tails =
        clean.score_streams(network, engine, MetricKind::Diff, ONSET..ONSET + HORIZON);
    let clean_streams: Vec<Vec<f64>> = warmup
        .iter()
        .zip(&clean_tails)
        .zip(&hostile_mask)
        .filter(|(_, &hostile)| !hostile)
        .map(|((head, tail), _)| head.iter().chain(tail).copied().collect())
        .collect();
    for detector in &detectors {
        let far = far_replay(
            detector,
            &clean_streams.iter().map(Vec::as_slice).collect::<Vec<_>>(),
        );
        report.push_note(format!(
            "{}: {far:.2} false alarms per 1k clean node-rounds held out after calibration \
             (target = {:.2})",
            detector.name(),
            TARGET_FAR * 1000.0
        ));
    }

    // One hostile trace per grid cell, scored once and replayed through
    // all three detectors.
    let mut best_gain: Option<(f64, f64, f64, f64)> = None; // (D, x, one-shot, best sequential)
    for &fraction in &FRACTIONS {
        let mut curves: Vec<Vec<(f64, f64)>> = vec![Vec::new(); detectors.len()];
        for &damage in &DAMAGE_SWEEP {
            let attack = AttackConfig {
                degree_of_damage: damage,
                compromised_fraction: fraction,
                class: AttackClass::DecBounded,
                targeted_metric: MetricKind::Diff,
            };
            let hostile =
                hostile_base.with_attack(AttackTimeline::Onset { at: ONSET }, attack, 1.0);
            let tails =
                hostile.score_streams(network, engine, MetricKind::Diff, ONSET..ONSET + HORIZON);
            let streams: Vec<Vec<f64>> = hostile_warmup
                .iter()
                .zip(&tails)
                .map(|(head, tail)| head.iter().chain(tail).copied().collect())
                .collect();
            let medians: Vec<f64> = detectors
                .iter()
                .map(|d| {
                    let mut ttds: Vec<f64> = streams.iter().map(|s| ttd_replay(d, s)).collect();
                    median(&mut ttds).expect("cells have attacked nodes")
                })
                .collect();
            for (curve, &median_ttd) in curves.iter_mut().zip(&medians) {
                curve.push((damage, median_ttd));
            }
            let one_shot = medians[0];
            let best_seq = medians[1].min(medians[2]);
            if best_gain.is_none_or(|(_, _, o, s)| one_shot - best_seq > o - s) {
                best_gain = Some((damage, fraction, one_shot, best_seq));
            }
        }
        for (detector, curve) in detectors.iter().zip(curves) {
            report.push_series(Series::new(
                format!("{} x={:.0}%", detector.name(), fraction * 100.0),
                curve,
            ));
        }
    }
    if let Some((damage, fraction, one_shot, best_seq)) = best_gain {
        report.push_note(format!(
            "largest sequential gain at D={damage:.0}, x={:.0}%: median TTD {best_seq:.0} \
             rounds vs {one_shot:.0} for repeated one-shot",
            fraction * 100.0
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `(detector name, fraction)` series label.
    fn series_label(detector: &str, fraction: f64) -> String {
        format!("{detector} x={:.0}%", fraction * 100.0)
    }

    #[test]
    fn sequential_detectors_beat_one_shot_somewhere_on_the_grid() {
        let report = temporal_detection(&EvalConfig::bench(), &SubstrateCache::new());
        assert_eq!(report.series.len(), 3 * FRACTIONS.len());

        let mut cusum_wins = false;
        let mut ewma_wins = false;
        for &fraction in &FRACTIONS {
            let one_shot = report
                .series_by_label(&series_label("one-shot", fraction))
                .unwrap();
            let cusum = report
                .series_by_label(&series_label("cusum", fraction))
                .unwrap();
            let ewma = report
                .series_by_label(&series_label("ewma", fraction))
                .unwrap();
            for i in 0..DAMAGE_SWEEP.len() {
                let baseline = one_shot.points[i].1;
                assert!(baseline >= 1.0, "TTD counts the onset round as 1");
                cusum_wins |= cusum.points[i].1 < baseline;
                ewma_wins |= ewma.points[i].1 < baseline;
                // Sanity: everything is within the censoring cap.
                for series in [one_shot, cusum, ewma] {
                    assert!(series.points[i].1 <= (HORIZON + 1) as f64);
                }
            }
        }
        assert!(
            cusum_wins,
            "CUSUM should have strictly lower median TTD than one-shot on some cell"
        );
        assert!(
            ewma_wins,
            "EWMA should have strictly lower median TTD than one-shot on some cell"
        );
    }

    #[test]
    fn detection_gets_faster_with_damage() {
        let report = temporal_detection(&EvalConfig::bench(), &SubstrateCache::new());
        for series in &report.series {
            let first = series.points.first().unwrap().1;
            let last = series.points.last().unwrap().1;
            assert!(
                last <= first + 1e-9,
                "{}: TTD at D={} ({last}) should not exceed TTD at D={} ({first})",
                series.label,
                DAMAGE_SWEEP[DAMAGE_SWEEP.len() - 1],
                DAMAGE_SWEEP[0]
            );
        }
    }
}
