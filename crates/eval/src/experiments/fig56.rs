//! Figures 5 and 6: ROC curves for the two attack classes (DR-FP-T-D).
//!
//! Setup (paper §7.5): x = 10 %, m = 300, Diff metric; one panel per degree
//! of damage D ∈ {40, 80} (Figure 5) and D ∈ {120, 160} (Figure 6); one curve
//! per attack class. Declared as a `{Diff} × classes × D × {0.1}` grid.

use crate::config::EvalConfig;
use crate::experiments::{standard_axis, PAPER_COMPROMISED_FRACTION};
use crate::report::{FigureReport, Series};
use crate::scenario::{AttackMix, ParamGrid, ScenarioRunner, ScenarioSpec, SubstrateCache};
use lad_attack::AttackClass;
use lad_core::MetricKind;

/// Degrees of damage shown across Figures 5 and 6.
pub const DAMAGE_LEVELS: [f64; 4] = [40.0, 80.0, 120.0, 160.0];

/// The scenario Figures 5–6 sweep.
pub fn fig56_spec(base: &EvalConfig) -> ScenarioSpec {
    ScenarioSpec::new(
        "fig5_6",
        "ROC curves for Dec-Bounded vs Dec-Only attacks (DR-FP-T-D)",
        standard_axis(base),
        ParamGrid {
            metrics: vec![MetricKind::Diff],
            attacks: AttackClass::ALL.map(AttackMix::pure).to_vec(),
            damages: DAMAGE_LEVELS.to_vec(),
            fractions: vec![PAPER_COMPROMISED_FRACTION],
        },
        base.sampling_plan(),
    )
}

/// Reproduces Figures 5 and 6 (one combined report; the CSV carries all four
/// panels).
pub fn fig56_roc_attacks(base: &EvalConfig, cache: &SubstrateCache) -> FigureReport {
    let spec = fig56_spec(base);
    let result = ScenarioRunner::with_cache(&spec, cache).run();
    let dep = result.single();

    let mut report =
        FigureReport::new(spec.id, spec.title, "false positive rate", "detection rate");
    report.push_note(format!(
        "x = {:.0}%, m = {}, M = Diff metric",
        PAPER_COMPROMISED_FRACTION * 100.0,
        dep.substrate.knowledge().group_size()
    ));

    for &d in &DAMAGE_LEVELS {
        for class in AttackClass::ALL {
            let cell = dep
                .find_cell(
                    MetricKind::Diff,
                    class.name(),
                    d,
                    PAPER_COMPROMISED_FRACTION,
                )
                .expect("cell is in the grid");
            let roc = dep.roc(cell);
            let points: Vec<(f64, f64)> = roc
                .points()
                .iter()
                .map(|p| (p.false_positive_rate, p.detection_rate))
                .collect();
            report.push_series(Series::new(format!("D={d:.0} {}", class.name()), points));
            report.push_note(format!(
                "D={d:.0} {}: AUC = {:.4}, DR@FP<=2% = {:.4}",
                class.name(),
                roc.auc(),
                roc.detection_rate_at_fp(0.02)
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig56_shape_matches_the_paper() {
        let base = EvalConfig::bench();
        let cache = SubstrateCache::new();
        let report = fig56_roc_attacks(&base, &cache);
        assert_eq!(report.series.len(), 8);

        let result = ScenarioRunner::with_cache(&fig56_spec(&base), &cache).run();
        let dep = result.single();
        let dr = |class: AttackClass, d: f64| {
            let cell = dep
                .find_cell(MetricKind::Diff, class.name(), d, 0.10)
                .unwrap();
            dep.detection_rate(cell, 0.10)
        };

        // Dec-Only is never harder to detect than Dec-Bounded at the same D.
        for &d in &[40.0, 120.0] {
            let bounded = dr(AttackClass::DecBounded, d);
            let only = dr(AttackClass::DecOnly, d);
            assert!(
                only + 1e-9 >= bounded,
                "D={d}: dec-only DR {only} should be >= dec-bounded DR {bounded}"
            );
        }

        // At large D the two classes converge (paper: the expensive defences
        // stop mattering once the damage is big).
        let bounded = dr(AttackClass::DecBounded, 160.0);
        let only = dr(AttackClass::DecOnly, 160.0);
        assert!(
            (only - bounded).abs() < 0.25,
            "classes should converge at D=160"
        );
    }
}
