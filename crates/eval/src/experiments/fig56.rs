//! Figures 5 and 6: ROC curves for the two attack classes (DR-FP-T-D).
//!
//! Setup (paper §7.5): x = 10 %, m = 300, Diff metric; one panel per degree
//! of damage D ∈ {40, 80} (Figure 5) and D ∈ {120, 160} (Figure 6); one curve
//! per attack class.

use crate::experiments::PAPER_COMPROMISED_FRACTION;
use crate::report::{FigureReport, Series};
use crate::runner::EvalContext;
use lad_attack::AttackClass;
use lad_core::MetricKind;

/// Degrees of damage shown across Figures 5 and 6.
pub const DAMAGE_LEVELS: [f64; 4] = [40.0, 80.0, 120.0, 160.0];

/// Reproduces Figures 5 and 6 (one combined report; the CSV carries all four
/// panels).
pub fn fig56_roc_attacks(ctx: &EvalContext) -> FigureReport {
    let mut report = FigureReport::new(
        "fig5_6",
        "ROC curves for Dec-Bounded vs Dec-Only attacks (DR-FP-T-D)",
        "false positive rate",
        "detection rate",
    );
    report.push_note(format!(
        "x = {:.0}%, m = {}, M = Diff metric",
        PAPER_COMPROMISED_FRACTION * 100.0,
        ctx.knowledge().group_size()
    ));

    for &d in &DAMAGE_LEVELS {
        for class in AttackClass::ALL {
            let set = ctx.score_set(MetricKind::Diff, class, d, PAPER_COMPROMISED_FRACTION);
            let roc = set.roc();
            let points: Vec<(f64, f64)> = roc
                .points()
                .iter()
                .map(|p| (p.false_positive_rate, p.detection_rate))
                .collect();
            report.push_series(Series::new(format!("D={d:.0} {}", class.name()), points));
            report.push_note(format!(
                "D={d:.0} {}: AUC = {:.4}, DR@FP<=2% = {:.4}",
                class.name(),
                roc.auc(),
                roc.detection_rate_at_fp(0.02)
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;

    #[test]
    fn fig56_shape_matches_the_paper() {
        let ctx = EvalContext::new(EvalConfig::bench());
        let report = fig56_roc_attacks(&ctx);
        assert_eq!(report.series.len(), 8);

        // Dec-Only is never harder to detect than Dec-Bounded at the same D.
        for &d in &[40.0, 120.0] {
            let bounded = ctx
                .score_set(MetricKind::Diff, AttackClass::DecBounded, d, 0.10)
                .detection_rate_at_fp(0.10);
            let only = ctx
                .score_set(MetricKind::Diff, AttackClass::DecOnly, d, 0.10)
                .detection_rate_at_fp(0.10);
            assert!(
                only + 1e-9 >= bounded,
                "D={d}: dec-only DR {only} should be >= dec-bounded DR {bounded}"
            );
        }

        // At large D the two classes converge (paper: the expensive defences
        // stop mattering once the damage is big).
        let bounded = ctx
            .score_set(MetricKind::Diff, AttackClass::DecBounded, 160.0, 0.10)
            .detection_rate_at_fp(0.10);
        let only = ctx
            .score_set(MetricKind::Diff, AttackClass::DecOnly, 160.0, 0.10)
            .detection_rate_at_fp(0.10);
        assert!(
            (only - bounded).abs() < 0.25,
            "classes should converge at D=160"
        );
    }
}
