//! Ablation E10: LAD on top of different localization schemes (§7.2).
//!
//! LAD is localization-agnostic, but its thresholds — and therefore its
//! false-positive / detection trade-off — depend on how accurate the
//! underlying scheme is. This ablation evaluates the same Dec-Bounded,
//! D = 120, x = 10 % attack while the clean scores (the threshold side) come
//! from three different schemes: the beaconless MLE the paper uses, the
//! centroid baseline, and DV-Hop.

use crate::experiments::{PAPER_COMPROMISED_FRACTION, PAPER_FP_BUDGET};
use crate::report::{FigureReport, Series};
use crate::runner::EvalContext;
use lad_attack::AttackClass;
use lad_core::MetricKind;
use lad_localization::{AnchorField, BeaconlessMle, CentroidLocalizer, DvHopLocalizer, Localizer};
use lad_net::{Network, NodeId};
use lad_stats::RocCurve;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// The degree of damage used by the ablation.
pub const DAMAGE: f64 = 120.0;

/// Runs the scheme-independence ablation.
pub fn ablation_localizers(ctx: &EvalContext) -> FigureReport {
    let mut report = FigureReport::new(
        "ablation_localizers",
        "LAD detection rate when trained on top of different localization schemes",
        "scheme index (0 = beaconless MLE, 1 = centroid, 2 = DV-Hop)",
        "detection rate at FP <= 1%",
    );
    report.push_note(format!(
        "D = {DAMAGE}, x = {:.0}%, T = Dec-Bounded, M = Diff metric",
        PAPER_COMPROMISED_FRACTION * 100.0
    ));

    let network = ctx
        .networks()
        .first()
        .expect("context has at least one network");
    let attacked = ctx.attacked_scores(
        MetricKind::Diff,
        AttackClass::DecBounded,
        DAMAGE,
        PAPER_COMPROMISED_FRACTION,
    );

    // Build the baseline localizers over a shared anchor field.
    let mut rng = ChaCha8Rng::seed_from_u64(ctx.config().seed ^ 0xA11C);
    let beacon_range = ctx.knowledge().config().area_side / 3.0;
    let anchors = AnchorField::random(network, 16, beacon_range, &mut rng);
    let centroid = CentroidLocalizer::new(anchors.clone());
    let dvhop = DvHopLocalizer::build(network, &anchors);
    let mle = BeaconlessMle::new();
    let schemes: Vec<(&str, &dyn Localizer)> = vec![
        ("beaconless-mle", &mle),
        ("centroid", &centroid),
        ("dv-hop", &dvhop),
    ];

    let samples = ctx.config().clean_samples_per_network;
    let mut points = Vec::new();
    for (idx, (name, localizer)) in schemes.iter().enumerate() {
        let (clean_scores, errors) = clean_scores_with(network, *localizer, samples);
        if clean_scores.is_empty() {
            report.push_note(format!("{name}: no node could be localized — skipped"));
            continue;
        }
        let roc = RocCurve::from_scores(&clean_scores, &attacked);
        let dr = roc.detection_rate_at_fp(PAPER_FP_BUDGET);
        let mean_err = errors.iter().sum::<f64>() / errors.len() as f64;
        points.push((idx as f64, dr));
        report.push_note(format!(
            "{name}: mean clean localization error {mean_err:.1} m, DR@FP<=1% = {dr:.3}, AUC = {:.3}",
            roc.auc()
        ));
    }
    report.push_series(Series::new("detection rate at FP<=1%", points));
    report
}

/// Clean Diff-metric scores (and localization errors) produced when the given
/// localizer supplies `L_e` for honest nodes.
fn clean_scores_with(
    network: &Network,
    localizer: &dyn Localizer,
    samples: usize,
) -> (Vec<f64>, Vec<f64>) {
    let knowledge = network.knowledge();
    let stride = (network.node_count() / samples.max(1)).max(1);
    let ids: Vec<NodeId> = (0..network.node_count())
        .step_by(stride)
        .map(|i| NodeId(i as u32))
        .collect();
    let metric = MetricKind::Diff.metric();
    let results: Vec<(f64, f64)> = ids
        .par_iter()
        .filter_map(|&id| {
            let estimate = localizer.localize(network, id)?;
            let obs = network.true_observation(id);
            let mu = knowledge.expected_observation(estimate);
            let score = metric.score(&obs, &mu, knowledge.group_size());
            Some((score, estimate.distance(network.node(id).resident_point)))
        })
        .collect();
    results.into_iter().unzip()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;

    #[test]
    fn all_three_schemes_are_evaluated() {
        let ctx = EvalContext::new(EvalConfig::bench());
        let report = ablation_localizers(&ctx);
        let series = report.series_by_label("detection rate at FP<=1%").unwrap();
        assert!(
            series.points.len() >= 2,
            "at least two schemes should produce results"
        );
        for (_, dr) in &series.points {
            assert!((0.0..=1.0).contains(dr));
        }
        // The MLE-based detector should detect the D = 120 attack reasonably well.
        assert!(
            series.points[0].1 > 0.5,
            "MLE-based DR {}",
            series.points[0].1
        );
    }
}
