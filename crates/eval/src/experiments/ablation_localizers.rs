//! Ablation E10: LAD on top of different localization schemes (§7.2).
//!
//! LAD is localization-agnostic, but its thresholds — and therefore its
//! false-positive / detection trade-off — depend on how accurate the
//! underlying scheme is. The scenario evaluates the same Dec-Bounded,
//! D = 120, x = 10 % attack on three **deployment axes** that differ only in
//! their [`LocalizerChoice`]: the beaconless MLE the paper uses, the
//! centroid baseline, and DV-Hop. Each axis trains its clean scores (the
//! threshold side) with its own scheme.

use crate::config::EvalConfig;
use crate::experiments::{PAPER_COMPROMISED_FRACTION, PAPER_FP_BUDGET};
use crate::report::{FigureReport, Series};
use crate::scenario::{
    DeploymentAxis, LocalizerChoice, ParamGrid, ScenarioRunner, ScenarioSpec, SubstrateCache,
};
use lad_attack::AttackClass;
use lad_core::MetricKind;

/// The degree of damage used by the ablation.
pub const DAMAGE: f64 = 120.0;

/// Anchors granted to the beacon-based baseline schemes.
pub const BASELINE_ANCHORS: usize = 16;

/// The schemes compared, in axis order.
pub fn scheme_axes(base: &EvalConfig) -> Vec<DeploymentAxis> {
    [
        LocalizerChoice::BeaconlessMle,
        LocalizerChoice::Centroid {
            anchors: BASELINE_ANCHORS,
        },
        LocalizerChoice::DvHop {
            anchors: BASELINE_ANCHORS,
        },
    ]
    .into_iter()
    .map(|choice| base.deployment_axis(choice.name()).with_localizer(choice))
    .collect()
}

/// The scheme-independence scenario.
pub fn ablation_localizers_spec(base: &EvalConfig) -> ScenarioSpec {
    let axes = scheme_axes(base);
    ScenarioSpec::new(
        "ablation_localizers",
        "LAD detection rate when trained on top of different localization schemes",
        axes[0].clone(),
        ParamGrid::single(
            MetricKind::Diff,
            AttackClass::DecBounded,
            DAMAGE,
            PAPER_COMPROMISED_FRACTION,
        ),
        base.sampling_plan(),
    )
    .with_deployments(axes)
}

/// Runs the scheme-independence ablation.
pub fn ablation_localizers(base: &EvalConfig, cache: &SubstrateCache) -> FigureReport {
    let spec = ablation_localizers_spec(base);
    let result = ScenarioRunner::with_cache(&spec, cache).run();

    let mut report = FigureReport::new(
        spec.id,
        spec.title,
        "scheme index (0 = beaconless MLE, 1 = centroid, 2 = DV-Hop)",
        "detection rate at FP <= 1%",
    );
    report.push_note(format!(
        "D = {DAMAGE}, x = {:.0}%, T = Dec-Bounded, M = Diff metric",
        PAPER_COMPROMISED_FRACTION * 100.0
    ));

    let mut points = Vec::new();
    for (idx, dep) in result.deployments.iter().enumerate() {
        let name = &dep.label;
        if dep.clean(MetricKind::Diff).count() == 0 {
            report.push_note(format!("{name}: no node could be localized — skipped"));
            continue;
        }
        let cell = &dep.cells[0];
        let roc = dep.roc(cell);
        let dr = roc.detection_rate_at_fp(PAPER_FP_BUDGET);
        let errors = dep.substrate.clean_error_summary();
        points.push((idx as f64, dr));
        report.push_note(format!(
            "{name}: mean clean localization error {:.1} m, DR@FP<=1% = {dr:.3}, AUC = {:.3}",
            errors.mean,
            roc.auc()
        ));
    }
    report.push_series(Series::new("detection rate at FP<=1%", points));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_schemes_are_evaluated() {
        let report = ablation_localizers(&EvalConfig::bench(), &SubstrateCache::new());
        let series = report.series_by_label("detection rate at FP<=1%").unwrap();
        assert!(
            series.points.len() >= 2,
            "at least two schemes should produce results"
        );
        for (_, dr) in &series.points {
            assert!((0.0..=1.0).contains(dr));
        }
        // The MLE-based detector should detect the D = 120 attack reasonably well.
        assert!(
            series.points[0].1 > 0.5,
            "MLE-based DR {}",
            series.points[0].1
        );
    }
}
