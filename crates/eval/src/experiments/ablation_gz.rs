//! Ablation E9: how large does the §3.3 lookup table have to be?
//!
//! The paper claims "to gain satisfactory level of accuracy, ω does not need
//! to be very large". This ablation sweeps ω and reports (a) the maximum
//! interpolation error of the table against the exact quadrature and (b) the
//! worst-case effect that error can have on a Diff-metric score (error × m ×
//! number of groups is a conservative bound; the measured per-location bound
//! is reported too).

use crate::report::{FigureReport, Series};
use crate::scenario::Substrate;
use lad_deployment::{gz_exact, GzTable};
use lad_geometry::Point2;

/// The ω values swept by the ablation.
pub const OMEGA_SWEEP: [usize; 6] = [16, 32, 64, 128, 256, 1024];

/// Runs the lookup-table ablation on a scenario substrate's deployment
/// knowledge. (This is a numerical table-accuracy sweep, not a Monte-Carlo
/// scenario — there are no score distributions to stream.)
pub fn ablation_gz_table(ctx: &Substrate) -> FigureReport {
    let config = ctx.knowledge().config();
    let mut report = FigureReport::new(
        "ablation_gz",
        "g(z) lookup-table accuracy vs table size omega (paper §3.3)",
        "omega (table sub-ranges)",
        "max |table - exact|",
    );
    report.push_note(format!(
        "R = {} m, sigma = {} m; the deployed configuration uses omega = {}",
        config.range, config.sigma, config.gz_table_omega
    ));

    let mut error_points = Vec::new();
    let mut mu_points = Vec::new();
    for &omega in &OMEGA_SWEEP {
        let table = GzTable::build(config.range, config.sigma, omega);
        let max_err = table.max_interpolation_error(8);
        error_points.push((omega as f64, max_err));

        // Worst-case perturbation of a single expected observation entry.
        let probe = Point2::new(config.area_side / 2.0, config.area_side / 2.0);
        let worst_mu_shift = ctx
            .knowledge()
            .layout()
            .deployment_points()
            .iter()
            .map(|dp| {
                let z = dp.distance(probe);
                (table.eval(z) - gz_exact(z, config.range, config.sigma)).abs()
                    * config.group_size as f64
            })
            .fold(0.0, f64::max);
        mu_points.push((omega as f64, worst_mu_shift));
    }
    report.push_series(Series::new(
        "max g(z) interpolation error",
        error_points.clone(),
    ));
    report.push_series(Series::new(
        "worst per-group shift of the expected observation (nodes)",
        mu_points.clone(),
    ));
    report.push_note(format!(
        "at omega = 256 the worst expected-observation shift is {:.3} nodes — far below the Diff thresholds",
        mu_points[4].1
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use crate::experiments::standard_substrate;
    use crate::scenario::SubstrateCache;

    #[test]
    fn table_error_is_monotone_decreasing_and_tiny_at_the_default_omega() {
        let ctx = standard_substrate(&EvalConfig::bench(), &SubstrateCache::new());
        let report = ablation_gz_table(&ctx);
        let errors = report
            .series_by_label("max g(z) interpolation error")
            .unwrap();
        assert_eq!(errors.points.len(), OMEGA_SWEEP.len());
        // Errors shrink (weakly) as omega grows, and the paper's claim holds:
        // a few hundred entries are plenty.
        for w in errors.points.windows(2) {
            assert!(
                w[1].1 <= w[0].1 * 1.5 + 1e-12,
                "error should not grow with omega"
            );
        }
        let err_256 = errors.points[4].1;
        assert!(err_256 < 1e-4, "omega = 256 error {err_256}");
        let mu_shift = report
            .series_by_label("worst per-group shift of the expected observation (nodes)")
            .unwrap();
        assert!(mu_shift.points[4].1 < 0.1);
    }
}
