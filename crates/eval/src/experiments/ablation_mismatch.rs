//! Ablation E11: sensitivity to deployment-model mismatch (paper §8).
//!
//! The paper's stated future work: "the accuracy of the deployment knowledge
//! model … if this model cannot accurately model the actual deployment, there
//! will be extra errors (both on false positive and detection rate)". The
//! scenario quantifies those errors with one **deployment axis per actual
//! placement spread**: the detector is always trained under the *assumed*
//! σ (the base config's), while the networks of each axis are generated
//! under a different actual σ
//! ([`DeploymentAxis::with_actual_sigma`]). For each actual σ we report
//!
//! * the false-positive rate of honest nodes at the threshold trained under
//!   the assumed model (τ = 99 %),
//! * the detection rate against the standard D = 120, x = 10 % Dec-Bounded
//!   attack at that fixed threshold, and
//! * the Kolmogorov–Smirnov distance between the assumed and the actual
//!   clean score distributions (how visibly the model drifted) — computed
//!   straight from the streaming accumulators.

use crate::config::EvalConfig;
use crate::experiments::PAPER_COMPROMISED_FRACTION;
use crate::report::{FigureReport, Series};
use crate::scenario::{DeploymentAxis, ParamGrid, ScenarioRunner, ScenarioSpec, SubstrateCache};
use lad_attack::AttackClass;
use lad_core::MetricKind;
use lad_stats::streaming_ks;

/// Actual placement spreads evaluated against the assumed σ of the config.
pub const ACTUAL_SIGMAS: [f64; 5] = [35.0, 50.0, 65.0, 80.0, 100.0];

/// The degree of damage used for the detection-rate column.
pub const DAMAGE: f64 = 120.0;

/// The τ-percentile the fixed threshold is trained at.
pub const TAU: f64 = 0.99;

/// The actual σ values the ablation sweeps for `base`: [`ACTUAL_SIGMAS`]
/// plus the assumed σ itself (the matched reference point), sorted.
pub fn swept_sigmas(base: &EvalConfig) -> Vec<f64> {
    let mut sigmas = ACTUAL_SIGMAS.to_vec();
    if !sigmas.contains(&base.deployment.sigma) {
        sigmas.push(base.deployment.sigma);
    }
    sigmas.sort_by(|a, b| a.partial_cmp(b).expect("finite sigma"));
    sigmas
}

/// The model-mismatch scenario: one axis per actual σ.
pub fn ablation_mismatch_spec(base: &EvalConfig) -> ScenarioSpec {
    let axes: Vec<DeploymentAxis> = swept_sigmas(base)
        .into_iter()
        .map(|sigma| {
            base.deployment_axis(format!("sigma={sigma}"))
                .with_actual_sigma(sigma)
        })
        .collect();
    ScenarioSpec::new(
        "ablation_mismatch",
        "Effect of deployment-model mismatch on FP and DR (paper §8 future work)",
        axes[0].clone(),
        ParamGrid::single(
            MetricKind::Diff,
            AttackClass::DecBounded,
            DAMAGE,
            PAPER_COMPROMISED_FRACTION,
        ),
        base.sampling_plan(),
    )
    .with_deployments(axes)
}

/// Runs the deployment-model-mismatch ablation.
pub fn ablation_model_mismatch(base: &EvalConfig, cache: &SubstrateCache) -> FigureReport {
    let spec = ablation_mismatch_spec(base);
    let result = ScenarioRunner::with_cache(&spec, cache).run();

    let mut report = FigureReport::new(spec.id, spec.title, "actual placement sigma (m)", "rate");
    report.push_note(format!(
        "detector trained assuming sigma = {} m, tau = {:.0}%, Diff metric; attack: D = {DAMAGE}, x = {:.0}%, Dec-Bounded",
        base.deployment.sigma,
        TAU * 100.0,
        PAPER_COMPROMISED_FRACTION * 100.0
    ));

    // The matched axis (actual σ == assumed σ) supplies the trained
    // threshold and the drift baseline; swept_sigmas guarantees it exists.
    let sigmas = swept_sigmas(base);
    let matched = sigmas
        .iter()
        .position(|&s| s == base.deployment.sigma)
        .expect("swept_sigmas includes the assumed sigma");
    let matched_clean = result.deployments[matched].clean(MetricKind::Diff);
    let threshold = matched_clean
        .quantile(TAU)
        .expect("assumed model produced clean scores");
    report.push_note(format!("trained Diff threshold: {threshold:.1}"));

    let mut fp_points = Vec::new();
    let mut dr_points = Vec::new();
    let mut ks_points = Vec::new();
    for (dep, sigma_actual) in result.deployments.iter().zip(sigmas) {
        // Honest sensors in the *actual* world, judged with the *assumed*
        // model (the substrate always scores under the assumed knowledge).
        let fp = dep.clean(MetricKind::Diff).exceedance_fraction(threshold);
        // Attacked sensors in the actual world at the same fixed threshold.
        let dr = dep.cells[0].attacked.exceedance_fraction(threshold);
        let drift = streaming_ks(matched_clean, dep.clean(MetricKind::Diff));
        fp_points.push((sigma_actual, fp));
        dr_points.push((sigma_actual, dr));
        ks_points.push((sigma_actual, drift));
        report.push_note(format!(
            "actual sigma = {sigma_actual}: FP = {fp:.3}, DR(D={DAMAGE}) = {dr:.3}, clean-score KS drift = {drift:.3}"
        ));
    }
    report.push_series(Series::new("false positive rate", fp_points));
    report.push_series(Series::new("detection rate (D=120)", dr_points));
    report.push_series(Series::new("clean-score KS drift", ks_points));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mismatch_inflates_false_positives_but_keeps_detection() {
        let report = ablation_model_mismatch(&EvalConfig::bench(), &SubstrateCache::new());
        let fp = report.series_by_label("false positive rate").unwrap();
        let dr = report.series_by_label("detection rate (D=120)").unwrap();
        let ks = report.series_by_label("clean-score KS drift").unwrap();
        assert_eq!(fp.points.len(), ACTUAL_SIGMAS.len());

        // With the matched model (sigma = 50) the FP should stay in the
        // vicinity of the 1% training target (the bench preset only has 48
        // clean samples per side, so allow generous sampling noise).
        let matched_fp = fp.points[1].1;
        assert!(matched_fp < 0.25, "matched-model FP {matched_fp}");
        // A grossly wrong model (sigma = 100) must inflate FP above the
        // matched case — that is the paper's predicted "extra error".
        let wrong_fp = fp.points.last().unwrap().1;
        assert!(
            wrong_fp + 0.05 >= matched_fp,
            "mismatch should not reduce FP"
        );
        // The KS drift grows with the mismatch.
        assert!(ks.points.last().unwrap().1 + 0.05 >= ks.points[1].1);
        // Rates are probabilities.
        for series in [fp, dr, ks] {
            for (_, v) in &series.points {
                assert!((0.0..=1.0).contains(v));
            }
        }
    }

    #[test]
    fn works_when_the_assumed_sigma_is_not_in_the_hardcoded_sweep() {
        // Regression: the matched reference point must be added to the sweep
        // instead of panicking when the base σ is not one of ACTUAL_SIGMAS.
        let mut base = EvalConfig::bench();
        base.deployment = base.deployment.with_sigma(60.0);
        let report = ablation_model_mismatch(&base, &SubstrateCache::new());
        let fp = report.series_by_label("false positive rate").unwrap();
        assert_eq!(fp.points.len(), ACTUAL_SIGMAS.len() + 1);
        // The matched point exists and has zero drift from itself.
        let ks = report.series_by_label("clean-score KS drift").unwrap();
        let matched = ks.points.iter().find(|(s, _)| *s == 60.0).unwrap();
        assert_eq!(matched.1, 0.0);
    }
}
