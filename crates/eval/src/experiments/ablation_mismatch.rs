//! Ablation E11: sensitivity to deployment-model mismatch (paper §8).
//!
//! The paper's stated future work: "the accuracy of the deployment knowledge
//! model … if this model cannot accurately model the actual deployment, there
//! will be extra errors (both on false positive and detection rate)". This
//! ablation quantifies those errors: the detector is trained under the
//! *assumed* placement spread (σ = 50 m), while the actual deployment uses a
//! different σ. For each actual σ we report
//!
//! * the false-positive rate of honest nodes at the threshold trained under
//!   the assumed model (τ = 99 %),
//! * the detection rate against the standard D = 120, x = 10 % Dec-Bounded
//!   attack, and
//! * the Kolmogorov–Smirnov distance between the assumed and the actual
//!   clean score distributions (how visibly the model drifted).

use crate::config::EvalConfig;
use crate::experiments::PAPER_COMPROMISED_FRACTION;
use crate::report::{FigureReport, Series};
use lad_attack::{simulate_attack, AttackClass, AttackConfig};
use lad_core::MetricKind;
use lad_deployment::DeploymentKnowledge;
use lad_localization::BeaconlessMle;
use lad_net::{Network, NodeId};
use lad_stats::ks::ks_statistic;
use lad_stats::percentile;
use lad_stats::seeds::derive_seed;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::sync::Arc;

/// Actual placement spreads evaluated against the assumed σ of the config.
pub const ACTUAL_SIGMAS: [f64; 5] = [35.0, 50.0, 65.0, 80.0, 100.0];

/// The degree of damage used for the detection-rate column.
pub const DAMAGE: f64 = 120.0;

/// Runs the deployment-model-mismatch ablation.
pub fn ablation_model_mismatch(base: &EvalConfig) -> FigureReport {
    let assumed = DeploymentKnowledge::shared(&base.deployment);
    let mut report = FigureReport::new(
        "ablation_mismatch",
        "Effect of deployment-model mismatch on FP and DR (paper §8 future work)",
        "actual placement sigma (m)",
        "rate",
    );
    report.push_note(format!(
        "detector trained assuming sigma = {} m, tau = 99%, Diff metric; attack: D = {DAMAGE}, x = {:.0}%, Dec-Bounded",
        base.deployment.sigma,
        PAPER_COMPROMISED_FRACTION * 100.0
    ));

    // Clean scores under the assumed model -> the trained threshold.
    let assumed_clean = clean_scores(&assumed, &assumed, base, 0xA55);
    let threshold = percentile::tau_threshold(&assumed_clean, 0.99)
        .expect("assumed model produced clean scores");
    report.push_note(format!("trained Diff threshold: {threshold:.1}"));

    let mut fp_points = Vec::new();
    let mut dr_points = Vec::new();
    let mut ks_points = Vec::new();
    for (idx, &sigma_actual) in ACTUAL_SIGMAS.iter().enumerate() {
        let actual_cfg = base.deployment.with_sigma(sigma_actual);
        let actual = DeploymentKnowledge::shared(&actual_cfg);

        // Honest sensors in the *actual* world, judged with the *assumed* model.
        let actual_clean = clean_scores(&actual, &assumed, base, 0xB00 + idx as u64);
        let fp = percentile::exceedance_fraction(&actual_clean, threshold);

        // Attacked sensors in the actual world, judged with the assumed model.
        let attacked = attacked_scores(&actual, &assumed, base, 0xC00 + idx as u64);
        let dr = percentile::exceedance_fraction(&attacked, threshold);

        let drift = ks_statistic(&assumed_clean, &actual_clean);
        fp_points.push((sigma_actual, fp));
        dr_points.push((sigma_actual, dr));
        ks_points.push((sigma_actual, drift));
        report.push_note(format!(
            "actual sigma = {sigma_actual}: FP = {fp:.3}, DR(D={DAMAGE}) = {dr:.3}, clean-score KS drift = {drift:.3}"
        ));
    }
    report.push_series(Series::new("false positive rate", fp_points));
    report.push_series(Series::new("detection rate (D=120)", dr_points));
    report.push_series(Series::new("clean-score KS drift", ks_points));
    report
}

/// Clean Diff scores of honest nodes deployed under `actual`, evaluated with
/// the deployment knowledge `assumed` (localization and expectation).
fn clean_scores(
    actual: &Arc<DeploymentKnowledge>,
    assumed: &Arc<DeploymentKnowledge>,
    base: &EvalConfig,
    salt: u64,
) -> Vec<f64> {
    let localizer = BeaconlessMle::new();
    let metric = MetricKind::Diff.metric();
    (0..base.networks)
        .into_par_iter()
        .flat_map(|net_idx| {
            let network = Network::generate(
                actual.clone(),
                derive_seed(base.seed, &[salt, net_idx as u64]),
            );
            let ids = sample_ids(
                &network,
                base.clean_samples_per_network,
                derive_seed(base.seed, &[salt, net_idx as u64, 1]),
            );
            let metric = &metric;
            let localizer = &localizer;
            ids.into_par_iter()
                .filter_map(move |id| {
                    let obs = network.true_observation(id);
                    let estimate = localizer.estimate(assumed, &obs)?;
                    let mu = assumed.expected_observation(estimate);
                    Some(metric.score(&obs, &mu, assumed.group_size()))
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Diff scores of attacked victims deployed under `actual`, judged with the
/// `assumed` knowledge.
fn attacked_scores(
    actual: &Arc<DeploymentKnowledge>,
    assumed: &Arc<DeploymentKnowledge>,
    base: &EvalConfig,
    salt: u64,
) -> Vec<f64> {
    let metric = MetricKind::Diff.metric();
    let attack = AttackConfig {
        degree_of_damage: DAMAGE,
        compromised_fraction: PAPER_COMPROMISED_FRACTION,
        class: AttackClass::DecBounded,
        targeted_metric: MetricKind::Diff,
    };
    (0..base.networks)
        .into_par_iter()
        .flat_map(|net_idx| {
            let network = Network::generate(
                actual.clone(),
                derive_seed(base.seed, &[salt, net_idx as u64]),
            );
            let ids = sample_ids(
                &network,
                base.victims_per_network,
                derive_seed(base.seed, &[salt, net_idx as u64, 2]),
            );
            let metric = &metric;
            ids.into_par_iter()
                .enumerate()
                .map(move |(k, victim)| {
                    let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(
                        base.seed,
                        &[salt, net_idx as u64, 3, k as u64],
                    ));
                    let outcome = simulate_attack(&network, victim, &attack, &mut rng);
                    let mu = assumed.expected_observation(outcome.forged_location);
                    metric.score(&outcome.tainted_observation, &mu, assumed.group_size())
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

fn sample_ids(network: &Network, count: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| NodeId(rng.gen_range(0..network.node_count() as u32)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mismatch_inflates_false_positives_but_keeps_detection() {
        let report = ablation_model_mismatch(&EvalConfig::bench());
        let fp = report.series_by_label("false positive rate").unwrap();
        let dr = report.series_by_label("detection rate (D=120)").unwrap();
        let ks = report.series_by_label("clean-score KS drift").unwrap();
        assert_eq!(fp.points.len(), ACTUAL_SIGMAS.len());

        // With the matched model (sigma = 50) the FP should stay in the
        // vicinity of the 1% training target (the bench preset only has 48
        // clean samples per side, so allow generous sampling noise).
        let matched_fp = fp.points[1].1;
        assert!(matched_fp < 0.25, "matched-model FP {matched_fp}");
        // A grossly wrong model (sigma = 100) must inflate FP above the
        // matched case — that is the paper's predicted "extra error".
        let wrong_fp = fp.points.last().unwrap().1;
        assert!(
            wrong_fp + 0.05 >= matched_fp,
            "mismatch should not reduce FP"
        );
        // The KS drift grows with the mismatch.
        assert!(ks.points.last().unwrap().1 + 0.05 >= ks.points[1].1);
        // Rates are probabilities.
        for series in [fp, dr, ks] {
            for (_, v) in &series.points {
                assert!((0.0..=1.0).contains(v));
            }
        }
    }
}
