//! Joint D×x detection-rate heatmap (grid-native scenario E12).
//!
//! Figures 7 and 8 each sweep one of `D` (degree of damage) and `x`
//! (compromised fraction) while pinning the other; the joint surface —
//! which `(D, x)` combinations the detector actually covers at the paper's
//! FP = 1 % budget — was too expensive to hand-roll per point. As a
//! scenario it is one 7 × 7 grid whose 49 cells share a single clean-score
//! collection and evaluate concurrently.

use crate::config::EvalConfig;
use crate::experiments::{standard_axis, PAPER_FP_BUDGET};
use crate::report::{FigureReport, Series};
use crate::scenario::{AttackMix, ParamGrid, ScenarioRunner, ScenarioSpec, SubstrateCache};
use lad_attack::AttackClass;
use lad_core::MetricKind;

/// Degrees of damage on one heatmap axis.
pub const DAMAGE_SWEEP: [f64; 7] = [40.0, 60.0, 80.0, 100.0, 120.0, 140.0, 160.0];

/// Compromised fractions on the other axis.
pub const FRACTION_SWEEP: [f64; 7] = [0.0, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60];

/// The detection-rate level whose frontier the notes report.
pub const FRONTIER_DR: f64 = 0.9;

/// The joint D×x scenario.
pub fn heatmap_spec(base: &EvalConfig) -> ScenarioSpec {
    ScenarioSpec::new(
        "heatmap_dx",
        "Joint detection-rate surface over degree of damage and compromised fraction",
        standard_axis(base),
        ParamGrid {
            metrics: vec![MetricKind::Diff],
            attacks: vec![AttackMix::pure(AttackClass::DecBounded)],
            damages: DAMAGE_SWEEP.to_vec(),
            fractions: FRACTION_SWEEP.to_vec(),
        },
        base.sampling_plan(),
    )
}

/// Evaluates the joint D×x heatmap: one series per damage level (the
/// heatmap's rows), points over the compromised fraction, plus notes giving
/// the detection frontier — the smallest D reaching `FRONTIER_DR` at each
/// x.
pub fn heatmap_damage_compromise(base: &EvalConfig, cache: &SubstrateCache) -> FigureReport {
    let spec = heatmap_spec(base);
    let result = ScenarioRunner::with_cache(&spec, cache).run();
    let dep = result.single();

    let mut report = FigureReport::new(
        spec.id,
        spec.title,
        "compromised neighbours (%)",
        "detection rate at FP <= 1%",
    );
    report.push_note(format!(
        "FP = {:.0}%, m = {}, M = Diff metric, T = Dec-Bounded; {} grid cells",
        PAPER_FP_BUDGET * 100.0,
        dep.substrate.knowledge().group_size(),
        spec.grid.len()
    ));

    let dr_at = |d: f64, x: f64| {
        let cell = dep
            .find_cell(MetricKind::Diff, "dec-bounded", d, x)
            .expect("cell is in the grid");
        dep.detection_rate(cell, PAPER_FP_BUDGET)
    };

    for &d in &DAMAGE_SWEEP {
        let points: Vec<(f64, f64)> = FRACTION_SWEEP
            .iter()
            .map(|&x| (x * 100.0, dr_at(d, x)))
            .collect();
        report.push_series(Series::new(format!("D={d:.0}"), points));
    }

    // The frontier: how much damage the adversary must accept to stay
    // undetected, as a function of its compromise budget.
    for &x in &FRACTION_SWEEP {
        let frontier = DAMAGE_SWEEP.iter().find(|&&d| dr_at(d, x) >= FRONTIER_DR);
        report.push_note(match frontier {
            Some(d) => format!(
                "x = {:.0}%: smallest D with DR >= {FRONTIER_DR} is {d:.0} m",
                x * 100.0
            ),
            None => format!(
                "x = {:.0}%: no swept D reaches DR >= {FRONTIER_DR}",
                x * 100.0
            ),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_covers_the_full_grid_and_is_monotone_in_damage() {
        let report = heatmap_damage_compromise(&EvalConfig::bench(), &SubstrateCache::new());
        assert_eq!(report.series.len(), DAMAGE_SWEEP.len());
        for series in &report.series {
            assert_eq!(series.points.len(), FRACTION_SWEEP.len());
            for (_, dr) in &series.points {
                assert!((0.0..=1.0).contains(dr));
            }
        }
        // At the paper's x = 10% column, more damage must not detect worse.
        let col = |label: &str| {
            report.series_by_label(label).unwrap().points[1].1 // x = 10%
        };
        assert!(col("D=160") + 0.1 >= col("D=40"));
        // One frontier note per fraction.
        assert_eq!(
            report
                .notes
                .iter()
                .filter(|n| n.starts_with("x = "))
                .count(),
            FRACTION_SWEEP.len()
        );
    }
}
