//! Figure 8: detection rate vs percentage of compromised neighbours (DR-x-D).
//!
//! Setup (paper §7.7): FP = 1 %, m = 300, Diff metric, Dec-Bounded attacks;
//! one curve per degree of damage D ∈ {80, 120, 160}; x sweeps 0 … 60 %.
//! Declared as a `{Diff} × {Dec-Bounded} × D × x` grid.

use crate::config::EvalConfig;
use crate::experiments::{standard_axis, PAPER_FP_BUDGET};
use crate::report::{FigureReport, Series};
use crate::scenario::{AttackMix, ParamGrid, ScenarioRunner, ScenarioSpec, SubstrateCache};
use lad_attack::AttackClass;
use lad_core::MetricKind;

/// Compromised-neighbour fractions swept on the x axis (paper: 0 … 60 %).
pub const FRACTION_SWEEP: [f64; 7] = [0.0, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60];

/// Degrees of damage, one per curve.
pub const DAMAGE_LEVELS: [f64; 3] = [80.0, 120.0, 160.0];

/// The scenario Figure 8 sweeps.
pub fn fig8_spec(base: &EvalConfig) -> ScenarioSpec {
    ScenarioSpec::new(
        "fig8",
        "Detection rate vs percentage of compromised nodes (DR-x-D)",
        standard_axis(base),
        ParamGrid {
            metrics: vec![MetricKind::Diff],
            attacks: vec![AttackMix::pure(AttackClass::DecBounded)],
            damages: DAMAGE_LEVELS.to_vec(),
            fractions: FRACTION_SWEEP.to_vec(),
        },
        base.sampling_plan(),
    )
}

/// Reproduces Figure 8.
pub fn fig8_dr_vs_compromise(base: &EvalConfig, cache: &SubstrateCache) -> FigureReport {
    let spec = fig8_spec(base);
    let result = ScenarioRunner::with_cache(&spec, cache).run();
    let dep = result.single();

    let mut report = FigureReport::new(
        spec.id,
        spec.title,
        "compromised neighbours (%)",
        "detection rate",
    );
    report.push_note(format!(
        "FP = {:.0}%, m = {}, M = Diff metric, T = Dec-Bounded",
        PAPER_FP_BUDGET * 100.0,
        dep.substrate.knowledge().group_size()
    ));

    for &d in &DAMAGE_LEVELS {
        let points: Vec<(f64, f64)> = FRACTION_SWEEP
            .iter()
            .map(|&x| {
                let cell = dep
                    .find_cell(MetricKind::Diff, "dec-bounded", d, x)
                    .expect("cell is in the grid");
                (x * 100.0, dep.detection_rate(cell, PAPER_FP_BUDGET))
            })
            .collect();
        report.push_series(Series::new(format!("D={d:.0}"), points));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_damage_tolerates_more_compromise() {
        let report = fig8_dr_vs_compromise(&EvalConfig::bench(), &SubstrateCache::new());
        assert_eq!(report.series.len(), 3);
        let d80 = report.series_by_label("D=80").unwrap();
        let d160 = report.series_by_label("D=160").unwrap();
        assert_eq!(d80.points.len(), FRACTION_SWEEP.len());

        // At every compromise level, detecting D=160 anomalies is at least as
        // easy as detecting D=80 anomalies.
        for (p80, p160) in d80.points.iter().zip(&d160.points) {
            assert!(
                p160.1 + 0.1 >= p80.1,
                "D=160 should dominate D=80 at x={}%",
                p80.0
            );
        }

        // With no compromised neighbours and D=160 the detector should do well.
        assert!(
            d160.points[0].1 > 0.7,
            "DR at x=0, D=160 is {}",
            d160.points[0].1
        );

        // Detection degrades (weakly) as the compromise fraction grows.
        let first = d80.points.first().unwrap().1;
        let last = d80.points.last().unwrap().1;
        assert!(last <= first + 0.1);
    }
}
