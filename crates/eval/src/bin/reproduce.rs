//! `reproduce` — regenerate every figure of the LAD paper.
//!
//! ```text
//! Usage: reproduce [--smoke | --quick | --paper] [--only <id>[,<id>...]] [--out <dir>]
//!
//!   --smoke   tiny scenario grid end-to-end (seconds; the CI smoke step)
//!   --quick   reduced sample counts (default); curve shapes in ~a minute
//!   --paper   paper-scale sample counts; takes several minutes
//!   --only    run only the listed experiments (fig1_2, fig3, fig4, fig5_6,
//!             fig7, fig8, fig9, heatmap_dx, mixed_attacks, temporal,
//!             containment, ablation_gz, ablation_localizers,
//!             ablation_mismatch)
//!   --out     output directory for CSV/JSON artefacts (default: results/)
//! ```
//!
//! Every Monte-Carlo experiment is a declarative scenario
//! (`lad_eval::scenario::ScenarioSpec`) executed through one shared
//! `SubstrateCache`, so deployments reused across figures are simulated
//! once. Each experiment writes `<out>/<id>.csv` and `<id>.json`, prints its
//! notes to stdout, and the combined Markdown summary is written to
//! `<out>/summary.md` (the source material of EXPERIMENTS.md).

use lad_eval::experiments;
use lad_eval::scenario::SubstrateCache;
use lad_eval::{EvalConfig, FigureReport};
use std::path::PathBuf;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Smoke,
    Quick,
    Paper,
}

struct Args {
    mode: Mode,
    only: Option<Vec<String>>,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        mode: Mode::Quick,
        only: None,
        out: PathBuf::from("results"),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--paper" => args.mode = Mode::Paper,
            "--quick" => args.mode = Mode::Quick,
            "--smoke" => args.mode = Mode::Smoke,
            "--only" => {
                let list = iter.next().expect("--only needs a comma-separated list");
                args.only = Some(list.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--out" => {
                args.out = PathBuf::from(iter.next().expect("--out needs a directory"));
            }
            "--help" | "-h" => {
                println!(
                    "reproduce [--smoke | --quick | --paper] [--only <id>[,<id>...]] [--out <dir>]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn wanted(args: &Args, id: &str) -> bool {
    args.only
        .as_ref()
        .is_none_or(|list| list.iter().any(|x| x == id))
}

fn main() {
    let args = parse_args();
    let config = match args.mode {
        Mode::Paper => EvalConfig::paper(),
        Mode::Quick => EvalConfig::quick(),
        Mode::Smoke => EvalConfig::bench(),
    };
    let density_sweep: Vec<usize> = match args.mode {
        Mode::Paper => vec![100, 300, 600, 1000],
        Mode::Quick => vec![100, 300, 600],
        Mode::Smoke => vec![40, 120],
    };

    println!(
        "LAD reproduction — {} mode, {} groups of {} nodes, output -> {}",
        match args.mode {
            Mode::Paper => "paper",
            Mode::Quick => "quick",
            Mode::Smoke => "smoke",
        },
        config.deployment.group_count(),
        config.deployment.group_size,
        args.out.display()
    );

    // One cache for the whole run: the standard deployment point (networks +
    // clean scores) is simulated once and shared by every scenario that
    // sweeps it.
    let cache = SubstrateCache::new();
    let t0 = Instant::now();

    let mut reports: Vec<FigureReport> = Vec::new();
    let mut run = |id: &str, f: &dyn Fn() -> FigureReport| {
        if !wanted(&args, id) {
            return;
        }
        let t = Instant::now();
        let report = f();
        println!("\n=== {} ({:.1?}) ===", report.title, t.elapsed());
        for note in &report.notes {
            println!("  {note}");
        }
        report.save(&args.out).expect("write experiment artefacts");
        reports.push(report);
    };

    run("fig1_2", &|| {
        experiments::deployment_figures(&experiments::standard_substrate(&config, &cache))
    });
    run("fig3", &|| {
        experiments::attack_showcase(&experiments::standard_substrate(&config, &cache))
    });
    run("fig4", &|| experiments::fig4_roc_metrics(&config, &cache));
    run("fig5_6", &|| {
        experiments::fig56_roc_attacks(&config, &cache)
    });
    run("fig7", &|| experiments::fig7_dr_vs_damage(&config, &cache));
    run("fig8", &|| {
        experiments::fig8_dr_vs_compromise(&config, &cache)
    });
    run("fig9", &|| {
        experiments::fig9_dr_vs_density(&config, &density_sweep, &cache)
    });
    run("heatmap_dx", &|| {
        experiments::heatmap_damage_compromise(&config, &cache)
    });
    run("mixed_attacks", &|| {
        experiments::mixed_attack_workload(&config, &cache)
    });
    run("temporal", &|| {
        experiments::temporal_detection(&config, &cache)
    });
    run("containment", &|| experiments::containment(&config, &cache));
    run("ablation_gz", &|| {
        experiments::ablation_gz_table(&experiments::standard_substrate(&config, &cache))
    });
    run("ablation_localizers", &|| {
        experiments::ablation_localizers(&config, &cache)
    });
    run("ablation_mismatch", &|| {
        experiments::ablation_model_mismatch(&config, &cache)
    });

    // Combined Markdown summary.
    let mut summary = String::from("# LAD reproduction — experiment summary\n\n");
    for report in &reports {
        summary.push_str(&report.to_markdown());
    }
    std::fs::create_dir_all(&args.out).expect("create output directory");
    std::fs::write(args.out.join("summary.md"), summary).expect("write summary.md");

    println!(
        "\nall requested experiments finished in {:.1?}; artefacts in {} ({} shared deployment substrates)",
        t0.elapsed(),
        args.out.display(),
        cache.len()
    );
}
