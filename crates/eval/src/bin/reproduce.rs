//! `reproduce` — regenerate every figure of the LAD paper.
//!
//! ```text
//! Usage: reproduce [--quick | --paper] [--only <id>[,<id>...]] [--out <dir>]
//!
//!   --quick   reduced sample counts (default); curve shapes in ~a minute
//!   --paper   paper-scale sample counts; takes several minutes
//!   --only    run only the listed experiments (fig1_2, fig3, fig4, fig5_6,
//!             fig7, fig8, fig9, ablation_gz, ablation_localizers,
//!             ablation_mismatch)
//!   --out     output directory for CSV/JSON artefacts (default: results/)
//! ```
//!
//! Each experiment writes `<out>/<id>.csv` and `<id>.json`, prints its notes
//! to stdout, and the combined Markdown summary is written to
//! `<out>/summary.md` (the source material of EXPERIMENTS.md).

use lad_eval::experiments;
use lad_eval::{EvalConfig, EvalContext, FigureReport};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    paper: bool,
    only: Option<Vec<String>>,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        paper: false,
        only: None,
        out: PathBuf::from("results"),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--paper" => args.paper = true,
            "--quick" => args.paper = false,
            "--only" => {
                let list = iter.next().expect("--only needs a comma-separated list");
                args.only = Some(list.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--out" => {
                args.out = PathBuf::from(iter.next().expect("--out needs a directory"));
            }
            "--help" | "-h" => {
                println!("reproduce [--quick | --paper] [--only <id>[,<id>...]] [--out <dir>]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn wanted(args: &Args, id: &str) -> bool {
    args.only
        .as_ref()
        .is_none_or(|list| list.iter().any(|x| x == id))
}

fn main() {
    let args = parse_args();
    let config = if args.paper {
        EvalConfig::paper()
    } else {
        EvalConfig::quick()
    };
    let density_sweep: Vec<usize> = if args.paper {
        vec![100, 300, 600, 1000]
    } else {
        vec![100, 300, 600]
    };

    println!(
        "LAD reproduction — {} mode, {} groups of {} nodes, output -> {}",
        if args.paper { "paper" } else { "quick" },
        config.deployment.group_count(),
        config.deployment.group_size,
        args.out.display()
    );

    let t0 = Instant::now();
    println!("building evaluation context (deployments + clean scores)...");
    let ctx = EvalContext::new(config);
    println!(
        "  done in {:.1?}; {} clean samples",
        t0.elapsed(),
        ctx.clean_scores(lad_core::MetricKind::Diff).len()
    );

    let mut reports: Vec<FigureReport> = Vec::new();
    let mut run = |id: &str, f: &dyn Fn() -> FigureReport| {
        if !wanted(&args, id) {
            return;
        }
        let t = Instant::now();
        let report = f();
        println!("\n=== {} ({:.1?}) ===", report.title, t.elapsed());
        for note in &report.notes {
            println!("  {note}");
        }
        report.save(&args.out).expect("write experiment artefacts");
        reports.push(report);
    };

    run("fig1_2", &|| experiments::deployment_figures(&ctx));
    run("fig3", &|| experiments::attack_showcase(&ctx));
    run("fig4", &|| experiments::fig4_roc_metrics(&ctx));
    run("fig5_6", &|| experiments::fig56_roc_attacks(&ctx));
    run("fig7", &|| experiments::fig7_dr_vs_damage(&ctx));
    run("fig8", &|| experiments::fig8_dr_vs_compromise(&ctx));
    run("fig9", &|| {
        experiments::fig9_dr_vs_density(ctx.config(), &density_sweep)
    });
    run("ablation_gz", &|| experiments::ablation_gz_table(&ctx));
    run("ablation_localizers", &|| {
        experiments::ablation_localizers(&ctx)
    });
    run("ablation_mismatch", &|| {
        experiments::ablation_model_mismatch(ctx.config())
    });

    // Combined Markdown summary.
    let mut summary = String::from("# LAD reproduction — experiment summary\n\n");
    for report in &reports {
        summary.push_str(&report.to_markdown());
    }
    std::fs::create_dir_all(&args.out).expect("create output directory");
    std::fs::write(args.out.join("summary.md"), summary).expect("write summary.md");

    println!(
        "\nall requested experiments finished in {:.1?}; artefacts in {}",
        t0.elapsed(),
        args.out.display()
    );
}
