//! Evaluation presets.
//!
//! Each figure is a Monte-Carlo estimate over simulated deployments and
//! attacked victims; the presets trade statistical resolution for runtime.

use crate::scenario::{DeploymentAxis, SamplingPlan};
use lad_deployment::DeploymentConfig;
use serde::{Deserialize, Serialize};

/// Scale of an evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Deployment model parameters (area, grid, σ, m, R).
    pub deployment: DeploymentConfig,
    /// Number of independent deployments simulated per parameter point.
    pub networks: usize,
    /// Number of clean nodes sampled per deployment (they feed both threshold
    /// training and the false-positive axis).
    pub clean_samples_per_network: usize,
    /// Number of attacked victims sampled per deployment per parameter point.
    pub victims_per_network: usize,
    /// Master seed of the whole evaluation.
    pub seed: u64,
}

impl EvalConfig {
    /// Paper-scale evaluation: the §7.1 setup (10×10 groups of 300, σ = 50)
    /// with enough samples for smooth curves. Takes minutes on a laptop.
    pub fn paper() -> Self {
        Self {
            deployment: DeploymentConfig::paper_default(),
            networks: 4,
            clean_samples_per_network: 400,
            victims_per_network: 400,
            seed: 0x1ad_2005,
        }
    }

    /// Quick evaluation: same deployment geometry but fewer samples. Good for
    /// CI and for checking curve shapes in seconds.
    pub fn quick() -> Self {
        Self {
            deployment: DeploymentConfig::paper_default(),
            networks: 2,
            clean_samples_per_network: 120,
            victims_per_network: 120,
            seed: 0x1ad_2005,
        }
    }

    /// Tiny evaluation used by unit tests and Criterion benches: a 4×4-group
    /// deployment with small samples so a full figure runs in well under a
    /// second.
    pub fn bench() -> Self {
        Self {
            deployment: DeploymentConfig::small_test().with_group_size(80),
            networks: 1,
            clean_samples_per_network: 72,
            victims_per_network: 72,
            seed: 0x1ad_2005,
        }
    }

    /// Returns a copy with a different group size `m` (Figure 9 sweeps this).
    pub fn with_group_size(mut self, m: usize) -> Self {
        self.deployment = self.deployment.with_group_size(m);
        self
    }

    /// Returns a copy with a different master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total number of clean samples across all networks.
    pub fn total_clean_samples(&self) -> usize {
        self.networks * self.clean_samples_per_network
    }

    /// Total number of attacked victims across all networks.
    pub fn total_victims(&self) -> usize {
        self.networks * self.victims_per_network
    }

    /// The config's sample counts and master seed as a scenario
    /// [`SamplingPlan`].
    pub fn sampling_plan(&self) -> SamplingPlan {
        SamplingPlan {
            networks: self.networks,
            clean_samples_per_network: self.clean_samples_per_network,
            victims_per_network: self.victims_per_network,
            seed: self.seed,
        }
    }

    /// The config's deployment as a matched-model scenario
    /// [`DeploymentAxis`] (beaconless-MLE localization).
    pub fn deployment_axis(&self, label: impl Into<String>) -> DeploymentAxis {
        DeploymentAxis::new(label, self.deployment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_cost() {
        let paper = EvalConfig::paper();
        let quick = EvalConfig::quick();
        let bench = EvalConfig::bench();
        assert!(paper.total_clean_samples() > quick.total_clean_samples());
        assert!(quick.total_clean_samples() > bench.total_clean_samples());
        assert_eq!(paper.deployment.group_size, 300);
        assert!(bench.deployment.total_nodes() < quick.deployment.total_nodes());
    }

    #[test]
    fn builders_adjust_fields() {
        let cfg = EvalConfig::quick().with_group_size(500).with_seed(9);
        assert_eq!(cfg.deployment.group_size, 500);
        assert_eq!(cfg.seed, 9);
    }
}
