//! Revocation policies and the versioned revocation list they produce.
//!
//! A policy looks at the evidence (journal + suspicion + clusters) after
//! each alarm drain and appends decisions to the [`RevocationList`]:
//! revoke a node, quarantine a region, or lift a quarantine whose region
//! went quiet (the recovery leg). The list is the system of record — the
//! serving runtime enforces a compiled-down
//! [`lad_serve::ResponseFilter`] — and is versioned and
//! serializable exactly like the engine artifact and serve snapshot
//! (explicit `version` field, typed [`ResponseError::UnsupportedVersion`]
//! on anything else).

use crate::journal::AlarmJournal;
use crate::suspect::SuspectScorer;
use lad_geometry::Circle;
use lad_serve::ResponseFilter;
use lad_stats::percentile::exceedance_threshold;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The revocation-list format version this build writes and reads.
pub const REVOCATION_LIST_VERSION: u32 = 1;

/// Typed errors of the response layer's artifacts.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseError {
    /// The artifact's `version` field is not one this build supports.
    UnsupportedVersion {
        /// The version found in the artifact.
        found: u64,
    },
    /// The JSON could not be parsed.
    Parse(String),
}

impl fmt::Display for ResponseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResponseError::UnsupportedVersion { found } => {
                write!(f, "unsupported response artifact version {found}")
            }
            ResponseError::Parse(msg) => write!(f, "response artifact parse error: {msg}"),
        }
    }
}

impl std::error::Error for ResponseError {}

/// One revoked node, with the evidence snapshot that revoked it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RevokedNode {
    /// The node (raw id).
    pub node: u32,
    /// The round the revocation was decided in.
    pub round: u64,
    /// The node's suspicion at decision time.
    pub suspicion: f64,
    /// The node's journalled alarm count at decision time.
    pub alarms: u64,
}

/// One quarantined region, with lift bookkeeping (the recovery leg).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedRegion {
    /// The suppressed region: reports claiming a position inside it are
    /// dropped pre-scoring while the quarantine is active.
    pub region: Circle,
    /// The round the quarantine was imposed in.
    pub round: u64,
    /// The distinct nodes whose alarms condensed the focus (ascending).
    pub nodes: Vec<u32>,
    /// Alarms in the focus at decision time.
    pub alarms: usize,
    /// The latest round with evidence the region is still under attack:
    /// a journalled in-region alarm, or — since suppression hides
    /// in-region alarms by construction — a *suppressed* claim into the
    /// region by a watched (previously suspicious) node, folded in from
    /// the runtime's telemetry by
    /// [`ResponseController::step`](crate::ResponseController::step).
    pub hot_round: u64,
    /// Set when the region stayed quiet long enough to be lifted; a lifted
    /// quarantine no longer suppresses anything.
    pub lifted_round: Option<u64>,
}

impl QuarantinedRegion {
    /// Whether the quarantine is still suppressing reports.
    pub fn is_active(&self) -> bool {
        self.lifted_round.is_none()
    }
}

/// The versioned, serializable record of every response decision. See the
/// [module docs](self).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RevocationList {
    /// Format version (see [`REVOCATION_LIST_VERSION`]).
    pub version: u32,
    /// Monotone revision counter, bumped on every change — consumers (and
    /// the serve-side filter) can cheaply detect staleness.
    pub revision: u64,
    /// Revoked nodes, ascending by node id. Revocation is permanent:
    /// reinstating a node is an operator action outside this loop.
    pub revoked: Vec<RevokedNode>,
    /// Quarantined regions, in imposition order (lifted ones retained for
    /// the audit trail).
    pub quarantined: Vec<QuarantinedRegion>,
}

impl Default for RevocationList {
    fn default() -> Self {
        Self::new()
    }
}

impl RevocationList {
    /// An empty list at revision 0.
    pub fn new() -> Self {
        Self {
            version: REVOCATION_LIST_VERSION,
            revision: 0,
            revoked: Vec::new(),
            quarantined: Vec::new(),
        }
    }

    /// Whether `node` is revoked.
    pub fn is_revoked(&self, node: u32) -> bool {
        self.revoked.binary_search_by_key(&node, |r| r.node).is_ok()
    }

    /// Revokes `node` (no-op when already revoked; returns whether the
    /// list changed). Callers bump the revision once per decision batch.
    fn revoke(&mut self, entry: RevokedNode) -> bool {
        match self.revoked.binary_search_by_key(&entry.node, |r| r.node) {
            Ok(_) => false,
            Err(i) => {
                self.revoked.insert(i, entry);
                true
            }
        }
    }

    /// The active (unlifted) quarantined regions.
    pub fn active_regions(&self) -> impl Iterator<Item = &QuarantinedRegion> + '_ {
        self.quarantined.iter().filter(|q| q.is_active())
    }

    /// Compiles the list down to the flat filter the serving runtime
    /// enforces: revoked ids, active quarantine circles, and — so the
    /// runtime's region-suppression telemetry works even for callers that
    /// bypass [`ResponseController::install`] — a default watched set of
    /// every active region's member nodes (the nodes whose alarms
    /// condensed the focus; without a watched set, suppressed in-region
    /// claims would never register and every quarantine would auto-lift
    /// while its attacker keeps transmitting). The controller's `install`
    /// widens the watch to every node with alarm history.
    ///
    /// [`ResponseController::install`]: crate::ResponseController::install
    pub fn to_filter(&self) -> ResponseFilter {
        let watched = self
            .active_regions()
            .flat_map(|q| q.nodes.iter().copied())
            .collect();
        ResponseFilter::new(
            self.revision,
            self.revoked.iter().map(|r| r.node).collect(),
            self.active_regions().map(|q| q.region).collect(),
        )
        .with_watched(watched)
    }

    /// Serialises the list to compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("revocation list serialises")
    }

    /// Restores a list from [`Self::to_json`] output. Versions other than
    /// [`REVOCATION_LIST_VERSION`] are rejected with
    /// [`ResponseError::UnsupportedVersion`].
    pub fn from_json(json: &str) -> Result<Self, ResponseError> {
        let value =
            serde_json::parse_value(json).map_err(|e| ResponseError::Parse(e.to_string()))?;
        let found = value
            .get("version")
            .ok_or_else(|| {
                ResponseError::Parse("not a revocation list (no `version` field)".into())
            })?
            .as_u64()
            .ok_or_else(|| ResponseError::Parse("`version` must be an integer".into()))?;
        if found != REVOCATION_LIST_VERSION as u64 {
            return Err(ResponseError::UnsupportedVersion { found });
        }
        serde_json::from_value(&value).map_err(|e| ResponseError::Parse(e.to_string()))
    }
}

/// The evidence a policy decides on.
pub struct Evidence<'a> {
    /// The bounded alarm journal (canonical order).
    pub journal: &'a AlarmJournal,
    /// The per-node suspicion accumulator.
    pub scorer: &'a SuspectScorer,
    /// The round the decision is taken in (the latest drained round).
    pub round: u64,
}

/// A revocation policy: turns evidence into [`RevocationList`] changes.
///
/// Policies must be pure functions of the (canonically ordered) evidence
/// and the current list — no clocks, no randomness — so the closed loop
/// stays bit-deterministic in the serving runtime's shard count.
pub trait RevocationPolicy: Send + Sync {
    /// Short policy name for labels and reports.
    fn name(&self) -> &'static str;

    /// Inspects the evidence and applies any new decisions to `list`
    /// (without bumping the revision — the controller does that once per
    /// decision batch). Returns whether the list changed.
    fn decide(&self, evidence: &Evidence<'_>, list: &mut RevocationList) -> bool;
}

/// Revoke any node whose decayed suspicion crosses a budget.
///
/// The budget is *calibrated* the same way the detectors' thresholds are:
/// [`ThresholdRevoke::calibrate`] replays clean alarm streams through the
/// suspicion recursion and picks the smallest budget whose clean
/// exceedance rate (the collateral-revocation rate) meets a target — so
/// honest nodes are revoked at most at the configured rate, while an
/// attacker alarming at the detector's cadence ramps past any finite
/// budget in a handful of rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdRevoke {
    /// Revoke when suspicion exceeds this value.
    pub budget: f64,
}

impl ThresholdRevoke {
    /// Calibrates the budget against clean alarm behaviour:
    /// `clean_alarm_rounds` holds, for every honest node in the
    /// calibration population (including the never-alarming majority —
    /// they anchor the exceedance denominator), the rounds it alarmed in
    /// over `horizon` rounds of clean traffic. Each stream is replayed
    /// through the suspicion recursion (`config.decay`), and the budget is
    /// the smallest peak suspicion such that at most a
    /// `target_collateral` fraction of clean nodes would ever exceed it —
    /// the [`exceedance_threshold`] construction, always feasible on the
    /// calibration streams.
    ///
    /// # Panics
    /// Panics when `clean_alarm_rounds` is empty, the config is invalid,
    /// or `target_collateral ∉ [0, 1)`.
    pub fn calibrate(
        clean_alarm_rounds: &[Vec<u64>],
        horizon: u64,
        config: crate::ResponseConfig,
        target_collateral: f64,
    ) -> Self {
        config.validate();
        assert!(
            !clean_alarm_rounds.is_empty(),
            "budget calibration needs at least one clean node stream"
        );
        let peaks: Vec<f64> = clean_alarm_rounds
            .iter()
            .map(|rounds| {
                let mut scorer = SuspectScorer::new(config.decay);
                let mut peak = 0.0f64;
                for &round in rounds {
                    debug_assert!(round < horizon, "alarm round beyond the horizon");
                    scorer.observe_alarm(0, round);
                    peak = peak.max(scorer.suspicion(0, round));
                }
                peak
            })
            .collect();
        let budget = exceedance_threshold(&peaks, target_collateral)
            .expect("nonempty calibration population");
        ThresholdRevoke { budget }
    }
}

impl RevocationPolicy for ThresholdRevoke {
    fn name(&self) -> &'static str {
        "threshold-revoke"
    }

    fn decide(&self, evidence: &Evidence<'_>, list: &mut RevocationList) -> bool {
        let mut changed = false;
        for s in evidence.scorer.suspicions() {
            if list.is_revoked(s.node) {
                continue;
            }
            let suspicion = evidence.scorer.decayed(s, evidence.round);
            if suspicion > self.budget {
                changed |= list.revoke(RevokedNode {
                    node: s.node,
                    round: evidence.round,
                    suspicion,
                    alarms: s.alarms,
                });
            }
        }
        changed
    }
}

/// Quarantine a region when recent alarms condense into a tight,
/// suspicion-heavy spatial focus — and lift it again once the region
/// stays quiet (recovery).
///
/// Complements [`ThresholdRevoke`]: a spreading compromise (many victims,
/// each alarming once or twice) keeps every individual suspicion below a
/// per-node budget while the *region* is obviously hot; conversely a
/// quarantine contains an attack focus immediately, without waiting for
/// per-node evidence, at the cost of suppressing honest reports from the
/// same region — which is why quiet regions are lifted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterQuarantine {
    /// Single-linkage radius for clustering recent alarmed estimates.
    pub link_radius: f64,
    /// How many recent rounds of journal entries feed the clustering.
    pub window: u64,
    /// Minimum alarms in a focus before it can be quarantined.
    pub min_alarms: usize,
    /// Minimum total member suspicion before a focus is quarantined.
    pub suspicion_budget: f64,
    /// Margin added to the focus radius when drawing the region.
    pub margin: f64,
    /// Lift a quarantine after this many consecutive quiet rounds (no
    /// journalled alarm inside the region).
    pub lift_after: u64,
}

impl ClusterQuarantine {
    /// A reasonable default for a deployment with placement spread
    /// `sigma`: link at 1.5 σ, draw regions with a σ margin, require a
    /// focus of at least 4 alarms, and lift after 8 quiet rounds.
    pub fn for_sigma(sigma: f64, suspicion_budget: f64) -> Self {
        Self {
            link_radius: 1.5 * sigma,
            window: 12,
            min_alarms: 4,
            suspicion_budget,
            margin: sigma,
            lift_after: 8,
        }
    }
}

impl RevocationPolicy for ClusterQuarantine {
    fn name(&self) -> &'static str {
        "cluster-quarantine"
    }

    fn decide(&self, evidence: &Evidence<'_>, list: &mut RevocationList) -> bool {
        let mut changed = false;
        let since = evidence.round.saturating_sub(self.window);

        // Recovery first: lift any active region that has been quiet for
        // `lift_after` rounds — no journalled in-region alarm AND no
        // suppressed in-region claim by a watched node (`hot_round`, fed
        // by the runtime's suppression telemetry; without it, suppression
        // itself would hide every in-region alarm and make each
        // quarantine auto-lift after its quiet horizon while the attacker
        // keeps transmitting into the void).
        let lift_since = evidence.round.saturating_sub(self.lift_after);
        for q in &mut list.quarantined {
            if !q.is_active() || q.round > lift_since || q.hot_round > lift_since {
                continue;
            }
            let hot = evidence
                .journal
                .entries_since(lift_since)
                .iter()
                .any(|e| q.region.contains(e.estimate));
            if !hot {
                q.lifted_round = Some(evidence.round);
                changed = true;
            }
        }

        // Then impose: any recent focus that is big and suspicious enough
        // and not already covered by an active region.
        let entries = evidence.journal.entries_since(since);
        let clusters = evidence
            .scorer
            .clusters(entries, self.link_radius, evidence.round);
        for cluster in clusters {
            if cluster.alarms < self.min_alarms || cluster.suspicion <= self.suspicion_budget {
                continue;
            }
            // A focus that has already been quiet for the lift horizon
            // would be lifted again immediately — don't (re)impose it.
            if evidence.round.saturating_sub(cluster.last_round) >= self.lift_after {
                continue;
            }
            // A focus whose every member was already revoked (e.g. by a
            // ThresholdRevoke earlier in the same pass) is dealt with —
            // the revoked nodes are silenced node-wise, and quarantining
            // the region would only suppress honest residents' reports
            // with no attacker left to contain.
            if cluster.nodes.iter().all(|&n| list.is_revoked(n)) {
                continue;
            }
            let covered = list
                .active_regions()
                .any(|q| q.region.contains(cluster.centroid));
            if covered {
                continue;
            }
            list.quarantined.push(QuarantinedRegion {
                region: Circle::new(cluster.centroid, cluster.radius + self.margin),
                round: evidence.round,
                nodes: cluster.nodes,
                alarms: cluster.alarms,
                hot_round: cluster.last_round,
                lifted_round: None,
            });
            changed = true;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResponseConfig;
    use lad_geometry::Point2;
    use lad_net::NodeId;
    use lad_serve::Alarm;

    fn alarm(node: u32, round: u64, x: f64, y: f64) -> Alarm {
        Alarm {
            node: NodeId(node),
            round,
            score: 30.0,
            statistic: 40.0,
            estimate: Point2::new(x, y),
        }
    }

    #[test]
    fn revocation_list_round_trips_and_rejects_unknown_versions() {
        let mut list = RevocationList::new();
        list.revoke(RevokedNode {
            node: 9,
            round: 4,
            suspicion: 3.5,
            alarms: 4,
        });
        list.quarantined.push(QuarantinedRegion {
            region: Circle::new(Point2::new(10.0, 20.0), 55.0),
            round: 5,
            nodes: vec![9, 11],
            alarms: 6,
            hot_round: 5,
            lifted_round: None,
        });
        list.revision = 2;
        let back = RevocationList::from_json(&list.to_json()).expect("round trip");
        assert_eq!(list, back);
        assert!(back.is_revoked(9));
        assert!(!back.is_revoked(10));

        let wrong = list.to_json().replacen("\"version\":1", "\"version\":7", 1);
        assert!(matches!(
            RevocationList::from_json(&wrong),
            Err(ResponseError::UnsupportedVersion { found: 7 })
        ));
        assert!(matches!(
            RevocationList::from_json("{nope"),
            Err(ResponseError::Parse(_))
        ));
    }

    #[test]
    fn to_filter_compiles_only_active_regions() {
        let mut list = RevocationList::new();
        list.revoke(RevokedNode {
            node: 4,
            round: 1,
            suspicion: 2.0,
            alarms: 2,
        });
        list.quarantined.push(QuarantinedRegion {
            region: Circle::new(Point2::new(0.0, 0.0), 10.0),
            round: 1,
            nodes: vec![4],
            alarms: 4,
            hot_round: 1,
            lifted_round: Some(9),
        });
        list.quarantined.push(QuarantinedRegion {
            region: Circle::new(Point2::new(100.0, 100.0), 10.0),
            round: 2,
            nodes: vec![5],
            alarms: 5,
            hot_round: 2,
            lifted_round: None,
        });
        list.revision = 3;
        let filter = list.to_filter();
        assert_eq!(filter.revision, 3);
        assert_eq!(filter.revoked, vec![4]);
        assert_eq!(filter.quarantined.len(), 1, "lifted regions drop out");
        assert!(filter.suppresses(NodeId(4), Point2::new(500.0, 500.0)));
        assert!(filter.suppresses(NodeId(8), Point2::new(101.0, 99.0)));
        assert!(!filter.suppresses(NodeId(8), Point2::new(1.0, 1.0)));
    }

    #[test]
    fn threshold_revoke_fires_on_repeat_offenders_only() {
        let mut journal = AlarmJournal::new(64);
        let mut scorer = SuspectScorer::new(0.85);
        // Node 1: alarms every round (an attacker). Node 2: one false alarm.
        for round in 0..4 {
            let mut alarms = vec![alarm(1, round, 50.0, 50.0)];
            if round == 1 {
                alarms.push(alarm(2, round, 400.0, 400.0));
            }
            journal.ingest(&alarms);
            for a in &alarms {
                scorer.observe_alarm(a.node.0, a.round);
            }
        }
        let policy = ThresholdRevoke { budget: 2.0 };
        let mut list = RevocationList::new();
        let changed = policy.decide(
            &Evidence {
                journal: &journal,
                scorer: &scorer,
                round: 3,
            },
            &mut list,
        );
        assert!(changed);
        assert!(list.is_revoked(1));
        assert!(!list.is_revoked(2), "one decayed false alarm is tolerated");
        assert_eq!(list.revoked.len(), 1);
        assert_eq!(list.revoked[0].alarms, 4);
        assert!(list.revoked[0].suspicion > 2.0);

        // Deciding again changes nothing (idempotent).
        assert!(!policy.decide(
            &Evidence {
                journal: &journal,
                scorer: &scorer,
                round: 4,
            },
            &mut list,
        ));
    }

    #[test]
    fn calibrated_budget_bounds_clean_collateral() {
        let config = ResponseConfig {
            decay: 0.85,
            journal_capacity: 64,
        };
        // 100 clean nodes over 50 rounds: most never alarm, a few have one
        // or two isolated false alarms, one unlucky node has a burst.
        let mut streams: Vec<Vec<u64>> = vec![Vec::new(); 85];
        for i in 0..10u64 {
            streams.push(vec![(i * 5) % 50]);
        }
        for i in 0..4u64 {
            streams.push(vec![i * 7, i * 7 + 20]);
        }
        streams.push(vec![10, 11, 12]); // the unlucky burst
        let policy = ThresholdRevoke::calibrate(&streams, 50, config, 0.02);

        // Replay: at most 2% of the clean population exceeds the budget.
        let exceeding = streams
            .iter()
            .filter(|rounds| {
                let mut s = SuspectScorer::new(config.decay);
                rounds.iter().any(|&r| {
                    s.observe_alarm(0, r);
                    s.suspicion(0, r) > policy.budget
                })
            })
            .count();
        assert!(
            exceeding as f64 <= 0.02 * streams.len() as f64,
            "{exceeding} of {} clean nodes would be revoked at budget {}",
            streams.len(),
            policy.budget
        );
        // And an attacker alarming every round blows past it quickly.
        let mut s = SuspectScorer::new(config.decay);
        let mut crossed = None;
        for round in 0..20 {
            s.observe_alarm(0, round);
            if s.suspicion(0, round) > policy.budget {
                crossed = Some(round);
                break;
            }
        }
        assert!(
            crossed.is_some_and(|r| r < 10),
            "persistent attacker crosses the calibrated budget fast"
        );
    }

    #[test]
    fn cluster_quarantine_imposes_on_a_focus_and_lifts_when_quiet() {
        let policy = ClusterQuarantine {
            link_radius: 30.0,
            window: 8,
            min_alarms: 3,
            suspicion_budget: 2.0,
            margin: 20.0,
            lift_after: 4,
        };
        let mut journal = AlarmJournal::new(64);
        let mut scorer = SuspectScorer::new(0.9);
        let mut list = RevocationList::new();

        // Rounds 0..3: a three-node focus near (200, 200).
        for round in 0..3u64 {
            let alarms: Vec<Alarm> = (0..3)
                .map(|i| alarm(10 + i, round, 200.0 + i as f64 * 8.0, 200.0))
                .collect();
            journal.ingest(&alarms);
            for a in &alarms {
                scorer.observe_alarm(a.node.0, a.round);
            }
            policy.decide(
                &Evidence {
                    journal: &journal,
                    scorer: &scorer,
                    round,
                },
                &mut list,
            );
        }
        assert_eq!(list.quarantined.len(), 1, "one region for one focus");
        let region = list.quarantined[0].region;
        assert!(region.contains(Point2::new(208.0, 200.0)));
        assert_eq!(list.quarantined[0].nodes, vec![10, 11, 12]);

        // Re-deciding while the focus persists does not duplicate it.
        policy.decide(
            &Evidence {
                journal: &journal,
                scorer: &scorer,
                round: 3,
            },
            &mut list,
        );
        assert_eq!(list.quarantined.len(), 1);

        // Quiet rounds: the region is lifted after `lift_after`.
        let changed = policy.decide(
            &Evidence {
                journal: &journal,
                scorer: &scorer,
                round: 3 + policy.lift_after + 3,
            },
            &mut list,
        );
        assert!(changed);
        assert!(!list.quarantined[0].is_active());
        assert_eq!(list.to_filter().quarantined.len(), 0);
    }
}
