//! The closed-loop controller: drain → attribute → decide → enforce.
//!
//! [`ResponseController`] owns the evidence ([`AlarmJournal`] +
//! [`SuspectScorer`]), a stack of [`RevocationPolicy`] objects, and the
//! [`RevocationList`] of record. One [`ResponseController::step`] per
//! served round (or per drain cadence) closes the loop: it drains the
//! runtime's alarm stream, canonicalises it, updates the evidence, lets
//! every policy decide, and — when anything changed — installs the
//! compiled [`ResponseFilter`](lad_serve::ResponseFilter) back into the
//! runtime so the next round's revoked work never reaches a shard.
//!
//! Controller state snapshots to versioned JSON ([`ResponseSnapshot`])
//! alongside the runtime's own v2 snapshot; policies are configuration,
//! not state, and are re-attached on restore (exactly like the detector in
//! a `ServeConfig`).

use crate::journal::AlarmJournal;
use crate::policy::{Evidence, QuarantinedRegion, ResponseError, RevocationList, RevocationPolicy};
use crate::suspect::{ResponseConfig, SuspectScorer};
use lad_net::NodeId;
use lad_serve::{Alarm, ServeRuntime};
use lad_stats::SequentialDetector;
use serde::{Deserialize, Serialize};

/// The response-snapshot format version this build writes and reads.
pub const RESPONSE_SNAPSHOT_VERSION: u32 = 1;

/// What one controller step changed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepOutcome {
    /// Alarms drained and journalled this step.
    pub alarms: usize,
    /// Nodes newly revoked this step (ascending) — feed these to
    /// `TrafficModel::revoke_nodes` in simulations, or to the real
    /// deployment's revocation transport.
    pub newly_revoked: Vec<NodeId>,
    /// Regions newly quarantined this step (each carries the member nodes
    /// whose alarms condensed it — the set to notify in simulations).
    pub newly_quarantined: Vec<QuarantinedRegion>,
    /// Quarantines lifted this step (recovery).
    pub lifted: usize,
    /// Whether the revocation list changed (and, in [`ResponseController::step`],
    /// whether a fresh filter was installed).
    pub changed: bool,
}

/// The closed-loop response controller. See the [module docs](self).
pub struct ResponseController {
    config: ResponseConfig,
    journal: AlarmJournal,
    scorer: SuspectScorer,
    policies: Vec<Box<dyn RevocationPolicy>>,
    list: RevocationList,
    last_round: u64,
    /// Indices into `list.quarantined` of the regions compiled into the
    /// currently installed filter (same order as its circles), plus the
    /// suppression counts last read for them — the baseline for the
    /// per-step telemetry delta. Runtime-coupled, reset on every install.
    installed_regions: Vec<usize>,
    installed_hits: Vec<u64>,
}

impl std::fmt::Debug for ResponseController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseController")
            .field("config", &self.config)
            .field("journal", &self.journal.len())
            .field("policies", &self.policies.len())
            .field("revoked", &self.list.revoked.len())
            .field("quarantined", &self.list.quarantined.len())
            .field("last_round", &self.last_round)
            .finish()
    }
}

impl ResponseController {
    /// A fresh controller with no policies attached (attach at least one
    /// via [`Self::with_policy`] for the loop to ever decide anything).
    ///
    /// # Panics
    /// Panics when the configuration is invalid.
    pub fn new(config: ResponseConfig) -> Self {
        config.validate();
        Self {
            config,
            journal: AlarmJournal::new(config.journal_capacity),
            scorer: SuspectScorer::new(config.decay),
            policies: Vec::new(),
            list: RevocationList::new(),
            last_round: 0,
            installed_regions: Vec::new(),
            installed_hits: Vec::new(),
        }
    }

    /// Attaches a policy (policies decide in attachment order).
    pub fn with_policy(mut self, policy: Box<dyn RevocationPolicy>) -> Self {
        self.policies.push(policy);
        self
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ResponseConfig {
        &self.config
    }

    /// The alarm journal (canonical order).
    pub fn journal(&self) -> &AlarmJournal {
        &self.journal
    }

    /// The per-node suspicion accumulator.
    pub fn scorer(&self) -> &SuspectScorer {
        &self.scorer
    }

    /// The revocation list of record.
    pub fn revocations(&self) -> &RevocationList {
        &self.list
    }

    /// The core of the loop, decoupled from any runtime: folds a drained
    /// alarm batch into the evidence as of `round` and runs the policies.
    /// The batch is canonicalised to `(round, node)` order first, so the
    /// outcome is a pure function of the alarm *set* — independent of the
    /// runtime's shard interleaving.
    pub fn observe(&mut self, alarms: &[Alarm], round: u64) -> StepOutcome {
        self.last_round = self.last_round.max(round);
        self.journal.ingest(alarms);
        let mut batch: Vec<(u64, u32)> = alarms.iter().map(|a| (a.round, a.node.0)).collect();
        batch.sort_unstable();
        for &(alarm_round, node) in &batch {
            self.scorer.observe_alarm(node, alarm_round);
        }

        let revoked_before: Vec<u32> = self.list.revoked.iter().map(|r| r.node).collect();
        let quarantined_before = self.list.quarantined.len();
        let active_before = self.list.active_regions().count();

        let mut changed = false;
        let evidence = Evidence {
            journal: &self.journal,
            scorer: &self.scorer,
            round,
        };
        for policy in &self.policies {
            changed |= policy.decide(&evidence, &mut self.list);
        }
        if changed {
            self.list.revision += 1;
        }

        let newly_revoked: Vec<NodeId> = self
            .list
            .revoked
            .iter()
            .map(|r| r.node)
            .filter(|n| revoked_before.binary_search(n).is_err())
            .map(NodeId)
            .collect();
        let newly_quarantined: Vec<QuarantinedRegion> =
            self.list.quarantined[quarantined_before..].to_vec();
        let active_after = self.list.active_regions().count();
        let lifted = (active_before + newly_quarantined.len()).saturating_sub(active_after);
        StepOutcome {
            alarms: alarms.len(),
            newly_revoked,
            newly_quarantined,
            lifted,
            changed,
        }
    }

    /// Installs the current revocation filter into `runtime` — revoked
    /// ids, active quarantine circles, and the watch list (every node with
    /// alarm history, so its *suppressed* claims count toward region
    /// telemetry) — and resets the telemetry baseline. Called by
    /// [`Self::step`] whenever the list changes; call it once yourself
    /// after restoring a controller/runtime pair from snapshots, or the
    /// fresh runtime enforces nothing.
    pub fn install(&mut self, runtime: &ServeRuntime) {
        let watched = self.scorer.suspicions().iter().map(|s| s.node).collect();
        runtime.install_response_filter(self.list.to_filter().with_watched(watched));
        self.installed_regions = self
            .list
            .quarantined
            .iter()
            .enumerate()
            .filter_map(|(i, q)| q.is_active().then_some(i))
            .collect();
        self.installed_hits = vec![0; self.installed_regions.len()];
    }

    /// One closed-loop step against a live runtime: folds the runtime's
    /// per-region suppression telemetry into the quarantined regions'
    /// freshness (a quarantined attacker that keeps claiming into its
    /// region produces no *alarms* — they are suppressed pre-scoring — but
    /// must still count as "hot", or every quarantine would auto-lift
    /// after its quiet horizon), drains its alarms (syncing first, so the
    /// step covers every round submitted so far), observes them as of
    /// `round`, and — when the list changed — installs the freshly
    /// compiled filter back into the runtime.
    pub fn step(&mut self, runtime: &ServeRuntime, round: u64) -> StepOutcome {
        let telemetry = runtime.telemetry();
        let _span = telemetry.span(lad_telemetry::Stage::ResponseStep);
        let (revision, hits) = runtime.region_suppression();
        if revision == self.list.revision && hits.len() == self.installed_regions.len() {
            for ((&idx, &now), &before) in self
                .installed_regions
                .iter()
                .zip(&hits)
                .zip(&self.installed_hits)
            {
                if now > before {
                    let q = &mut self.list.quarantined[idx];
                    q.hot_round = q.hot_round.max(round);
                }
            }
            self.installed_hits = hits;
        }
        let alarms = runtime.drain_alarms();
        let outcome = self.observe(&alarms, round);
        if outcome.changed {
            self.install(runtime);
            telemetry.event(
                lad_telemetry::EventKind::RevocationInstall,
                round,
                self.list.revoked.len() as u64,
                self.list.quarantined.len() as u64,
                "",
            );
        }
        outcome
    }

    /// A versioned snapshot of the controller's state (policies are
    /// configuration and are not captured — re-attach them on restore).
    pub fn snapshot(&self) -> ResponseSnapshot {
        ResponseSnapshot {
            version: RESPONSE_SNAPSHOT_VERSION,
            config: self.config,
            journal: self.journal.clone(),
            scorer: self.scorer.clone(),
            list: self.list.clone(),
            last_round: self.last_round,
        }
    }

    /// Rebuilds a controller from a snapshot (with no policies attached —
    /// chain [`Self::with_policy`] to re-attach them, then call
    /// [`Self::install`] against the restored runtime to resume
    /// enforcement).
    pub fn from_snapshot(snapshot: ResponseSnapshot) -> Self {
        Self {
            config: snapshot.config,
            journal: snapshot.journal,
            scorer: snapshot.scorer,
            policies: Vec::new(),
            list: snapshot.list,
            last_round: snapshot.last_round,
            installed_regions: Vec::new(),
            installed_hits: Vec::new(),
        }
    }
}

/// The serialisable state of a [`ResponseController`]. Versioned like
/// every other artifact in the workspace: an explicit `version` field,
/// typed [`ResponseError::UnsupportedVersion`] on anything else.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseSnapshot {
    /// Snapshot format version (see [`RESPONSE_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The evidence configuration.
    pub config: ResponseConfig,
    /// The alarm journal.
    pub journal: AlarmJournal,
    /// The per-node suspicion state.
    pub scorer: SuspectScorer,
    /// The revocation list of record.
    pub list: RevocationList,
    /// The latest observed round.
    pub last_round: u64,
}

impl ResponseSnapshot {
    /// Serialises the snapshot to compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("response snapshot serialises")
    }

    /// Restores a snapshot from [`Self::to_json`] output. Versions other
    /// than [`RESPONSE_SNAPSHOT_VERSION`] are rejected with
    /// [`ResponseError::UnsupportedVersion`].
    pub fn from_json(json: &str) -> Result<Self, ResponseError> {
        let value =
            serde_json::parse_value(json).map_err(|e| ResponseError::Parse(e.to_string()))?;
        let found = value
            .get("version")
            .ok_or_else(|| {
                ResponseError::Parse("not a response snapshot (no `version` field)".into())
            })?
            .as_u64()
            .ok_or_else(|| ResponseError::Parse("`version` must be an integer".into()))?;
        if found != RESPONSE_SNAPSHOT_VERSION as u64 {
            return Err(ResponseError::UnsupportedVersion { found });
        }
        serde_json::from_value(&value).map_err(|e| ResponseError::Parse(e.to_string()))
    }
}

/// Replays `detector` over clean per-node score streams (population
/// order, as produced by `TrafficModel::score_streams`) and returns each
/// node's *alarm rounds* — the clean alarm streams revocation budgets are
/// calibrated against ([`ThresholdRevoke::calibrate`]). `reset_on_alarm`
/// must match the serving configuration for the replay to be faithful.
///
/// [`ThresholdRevoke::calibrate`]: crate::ThresholdRevoke::calibrate
pub fn clean_alarm_rounds(
    detector: &SequentialDetector,
    streams: &[Vec<f64>],
    reset_on_alarm: bool,
) -> Vec<Vec<u64>> {
    streams
        .iter()
        .map(|stream| {
            let mut state = detector.initial_state();
            let mut rounds = Vec::new();
            for (round, &score) in stream.iter().enumerate() {
                if detector.update(&mut state, score) {
                    rounds.push(round as u64);
                    if reset_on_alarm {
                        detector.reset(&mut state);
                    }
                }
            }
            rounds
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ClusterQuarantine, ThresholdRevoke};
    use lad_geometry::Point2;

    fn alarm(node: u32, round: u64, x: f64, y: f64) -> Alarm {
        Alarm {
            node: NodeId(node),
            round,
            score: 30.0,
            statistic: 40.0,
            estimate: Point2::new(x, y),
        }
    }

    fn controller() -> ResponseController {
        ResponseController::new(ResponseConfig::default())
            .with_policy(Box::new(ThresholdRevoke { budget: 2.5 }))
            .with_policy(Box::new(ClusterQuarantine {
                link_radius: 40.0,
                window: 8,
                min_alarms: 4,
                suspicion_budget: 3.0,
                margin: 25.0,
                lift_after: 5,
            }))
    }

    #[test]
    fn repeat_offender_is_revoked_and_reported_once() {
        let mut ctl = controller();
        let mut revoked_events = Vec::new();
        for round in 0..6u64 {
            let outcome = ctl.observe(&[alarm(9, round, 300.0, 300.0)], round);
            revoked_events.extend(outcome.newly_revoked.clone());
            if !outcome.newly_revoked.is_empty() {
                assert!(outcome.changed);
            }
        }
        assert_eq!(revoked_events, vec![NodeId(9)], "revoked exactly once");
        assert!(ctl.revocations().is_revoked(9));
        assert!(ctl.revocations().revision >= 1);
        assert_eq!(ctl.journal().total_alarms(), 6);
    }

    #[test]
    fn a_spread_focus_is_quarantined_then_lifted_when_quiet() {
        let mut ctl = controller();
        // Eight distinct nodes each alarm once near (100, 100): no single
        // node crosses the per-node budget, but the focus does.
        let mut quarantined = Vec::new();
        for round in 0..2u64 {
            let alarms: Vec<Alarm> = (0..4u32)
                .map(|i| {
                    alarm(
                        20 + round as u32 * 4 + i,
                        round,
                        100.0 + i as f64 * 10.0,
                        100.0 + round as f64 * 10.0,
                    )
                })
                .collect();
            let outcome = ctl.observe(&alarms, round);
            quarantined.extend(outcome.newly_quarantined.clone());
        }
        assert_eq!(quarantined.len(), 1, "one region for the focus");
        assert!(ctl.revocations().revoked.is_empty(), "nobody revoked");
        assert!(quarantined[0].region.contains(Point2::new(110.0, 105.0)));

        // Quiet rounds: recovery lifts the region.
        let mut lifted = 0;
        for round in 2..12u64 {
            lifted += ctl.observe(&[], round).lifted;
        }
        assert_eq!(lifted, 1);
        assert_eq!(ctl.revocations().to_filter().quarantined.len(), 0);
    }

    #[test]
    fn outcome_is_independent_of_drain_interleaving() {
        let batch = vec![
            alarm(5, 1, 50.0, 50.0),
            alarm(3, 0, 55.0, 50.0),
            alarm(5, 0, 52.0, 48.0),
            alarm(3, 1, 51.0, 53.0),
        ];
        let mut reversed = batch.clone();
        reversed.reverse();
        let mut a = controller();
        let mut b = controller();
        let oa = a.observe(&batch, 1);
        let ob = b.observe(&reversed, 1);
        assert_eq!(oa, ob);
        assert_eq!(a.revocations(), b.revocations());
        assert_eq!(a.journal().entries(), b.journal().entries());
        assert_eq!(a.scorer().suspicions(), b.scorer().suspicions());
    }

    #[test]
    fn snapshot_round_trips_and_resumes() {
        let mut ctl = controller();
        for round in 0..4u64 {
            ctl.observe(&[alarm(7, round, 10.0, 10.0)], round);
        }
        let json = ctl.snapshot().to_json();
        let snapshot = ResponseSnapshot::from_json(&json).expect("round trip");
        assert_eq!(snapshot, ctl.snapshot());

        // Resume: the restored controller (policies re-attached) makes the
        // same onward decisions as the uninterrupted one.
        let mut resumed = ResponseController::from_snapshot(snapshot)
            .with_policy(Box::new(ThresholdRevoke { budget: 2.5 }));
        let live = ctl.observe(&[alarm(8, 4, 500.0, 500.0)], 4);
        let restored = resumed.observe(&[alarm(8, 4, 500.0, 500.0)], 4);
        assert_eq!(live.newly_revoked, restored.newly_revoked);
        assert_eq!(ctl.revocations().revoked, resumed.revocations().revoked);

        // Unknown versions are rejected with the typed error.
        let wrong = json.replacen("\"version\":1", "\"version\":5", 1);
        assert!(matches!(
            ResponseSnapshot::from_json(&wrong),
            Err(ResponseError::UnsupportedVersion { found: 5 })
        ));
    }

    #[test]
    fn clean_alarm_rounds_match_a_manual_replay() {
        let detector = SequentialDetector::Cusum {
            reference: 1.0,
            threshold: 2.0,
        };
        let streams = vec![vec![0.0, 4.0, 0.0, 4.0, 4.0], vec![0.0; 5]];
        let rounds = clean_alarm_rounds(&detector, &streams, true);
        // Stream 0: s=0,3(alarm,reset),0,3(alarm,reset),3(alarm).
        assert_eq!(rounds[0], vec![1, 3, 4]);
        assert!(rounds[1].is_empty());
        // Without reset the accumulated sum keeps firing.
        let no_reset = clean_alarm_rounds(&detector, &streams, false);
        assert!(no_reset[0].len() >= rounds[0].len());
    }
}
