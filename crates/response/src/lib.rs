//! `lad_response` — closed-loop alarm attribution, revocation, and
//! recovery.
//!
//! The paper stops at *detecting* a localization anomaly; the serving
//! runtime (`lad_serve`) stops at *emitting* an alarm stream. A production
//! system must also answer **"which nodes are compromised, and what do we
//! do about them?"** — and then live with the consequences, because the
//! adversary reacts to whatever it does. This crate closes that loop:
//!
//! ```text
//!   ServeRuntime ──alarms──► AlarmJournal ──► SuspectScorer ──► policies
//!        ▲                   (bounded,        (per-node decaying  │
//!        │                    round-ordered,   suspicion +        │
//!        │                    spatially        GridIndex alarm    │
//!        │                    anchored)        clustering)        ▼
//!        └─── ResponseFilter ◄── RevocationList ◄── ThresholdRevoke /
//!             (suppress revoked     (versioned,      ClusterQuarantine
//!              nodes & quarantined   serializable,    (+ quarantine lift =
//!              regions pre-scoring)  monotone         recovery)
//!                                    revisions)
//! ```
//!
//! * [`AlarmJournal`] — a bounded, round-ordered store of every alarm the
//!   runtime fired, with per-node history and each alarm's *claimed*
//!   location as a spatial anchor.
//! * [`SuspectScorer`] — per-node suspicion that accumulates with each
//!   alarm and decays geometrically between alarms (one isolated false
//!   alarm fades; a repeat offender ramps), plus single-linkage clustering
//!   of recent alarmed estimates over [`lad_geometry::GridIndex`] — a
//!   localized attack focus shows up as one tight, suspicion-heavy
//!   cluster, while calibrated false alarms stay diffuse.
//! * [`RevocationPolicy`] — the decision layer: [`ThresholdRevoke`]
//!   revokes a node when its suspicion crosses a budget *calibrated on
//!   clean alarm streams* (bounding collateral damage the same way the
//!   detectors bound false alarms), and [`ClusterQuarantine`] quarantines
//!   a region when an alarm focus condenses — and lifts it again once the
//!   region stays quiet (the recovery leg). Decisions accumulate in a
//!   versioned, serializable [`RevocationList`].
//! * [`ResponseController`] — wires it together: drains the runtime,
//!   updates the evidence, runs the policies, and installs the compiled
//!   [`lad_serve::ResponseFilter`] back into the runtime, so revoked work
//!   never reaches the scoring hot path. Controller state (journal,
//!   suspicion, list) snapshots to versioned JSON
//!   ([`ResponseSnapshot`]) alongside the runtime's own snapshot.
//!
//! Everything downstream of the alarm stream is a pure function of the
//! alarm *set* (ingestion canonicalises order by `(round, node)`), so
//! revocation decisions are bit-deterministic in the runtime's shard
//! count — asserted by the workspace determinism suite.
//!
//! # Example
//!
//! ```
//! use lad_core::engine::LadEngine;
//! use lad_core::MetricKind;
//! use lad_deployment::DeploymentConfig;
//! use lad_net::{Network, NodeId};
//! use lad_response::{ResponseConfig, ResponseController, ThresholdRevoke};
//! use lad_serve::{AttackTimeline, ServeConfig, ServeRuntime, TrafficModel};
//! use lad_stats::SequentialDetector;
//! use lad_attack::{AttackClass, AttackConfig};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(
//!     LadEngine::builder()
//!         .deployment(&DeploymentConfig::small_test())
//!         .metrics(&MetricKind::ALL)
//!         .score_only()
//!         .build()
//!         .unwrap(),
//! );
//! let network = Network::generate(engine.knowledge().clone(), 7);
//! let nodes: Vec<_> = (0..24u32).map(NodeId).collect();
//! let clean = TrafficModel::clean(&network, &engine, nodes, 99);
//! let streams = clean.score_streams(&network, &engine, MetricKind::Diff, 0..20);
//! let detector = SequentialDetector::calibrate_cusum(streams.iter().map(Vec::as_slice), 0.01);
//!
//! // Budget calibrated on the detector's *clean* alarm behaviour, so
//! // honest nodes rarely accumulate enough suspicion to be revoked.
//! let policy = ThresholdRevoke::calibrate(
//!     &lad_response::clean_alarm_rounds(&detector, &streams, true),
//!     20,
//!     ResponseConfig::default(),
//!     0.01,
//! );
//!
//! let runtime = ServeRuntime::start(
//!     engine.clone(),
//!     ServeConfig::new(MetricKind::Diff, detector),
//! )
//! .unwrap();
//! let mut controller = ResponseController::new(ResponseConfig::default())
//!     .with_policy(Box::new(policy));
//! let mut traffic = clean.with_attack(
//!     AttackTimeline::Onset { at: 4 },
//!     AttackConfig {
//!         degree_of_damage: 160.0,
//!         compromised_fraction: 0.2,
//!         class: AttackClass::DecBounded,
//!         targeted_metric: MetricKind::Diff,
//!     },
//!     0.3,
//! );
//! for round in 0..16 {
//!     let batch = traffic.round(&network, round);
//!     runtime.submit_batch(round, batch);
//!     let outcome = controller.step(&runtime, round);
//!     // Close the loop: revoked attackers fall silent.
//!     traffic.revoke_nodes(&outcome.newly_revoked, round + 1);
//! }
//! runtime.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod controller;
pub mod journal;
pub mod policy;
pub mod suspect;

pub use controller::{
    clean_alarm_rounds, ResponseController, ResponseSnapshot, StepOutcome,
    RESPONSE_SNAPSHOT_VERSION,
};
pub use journal::{AlarmJournal, JournalEntry, NodeAlarmHistory};
pub use policy::{
    ClusterQuarantine, Evidence, QuarantinedRegion, ResponseError, RevocationList,
    RevocationPolicy, RevokedNode, ThresholdRevoke, REVOCATION_LIST_VERSION,
};
pub use suspect::{AlarmCluster, ResponseConfig, SuspectScorer};
