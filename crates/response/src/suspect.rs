//! Per-node suspicion and spatial alarm clustering — the attribution
//! layer between raw alarms and revocation decisions.
//!
//! Two orthogonal pieces of evidence separate a compromised node from an
//! honest one that tripped a calibrated false alarm:
//!
//! 1. **Repetition.** The detectors are calibrated so a clean node alarms
//!    rarely; an attacked node alarms at the detector's cadence. The
//!    [`SuspectScorer`] turns that into a per-node *suspicion* value: `+1`
//!    per alarm, decayed geometrically per quiet round — one isolated
//!    false alarm fades back to zero, while a repeat offender ramps
//!    linearly past any budget.
//! 2. **Spatial coherence.** A D-anomaly attacker claims a *consistent*
//!    forged location, so its alarms (and those of co-located victims of a
//!    spreading compromise) condense into a tight spatial focus, while
//!    false alarms scatter across the whole deployment. Single-linkage
//!    clustering of recent alarmed estimates over a
//!    [`lad_geometry::GridIndex`] (cell size = the linking radius, so a
//!    link query inspects at most 9 cells) makes that focus explicit.
//!
//! Both computations are pure functions of the canonically ordered journal
//! and the round — no clocks, no randomness — so response decisions stay
//! bit-deterministic in the serving runtime's shard count.

use crate::journal::JournalEntry;
use lad_geometry::{GridIndex, Point2, Rect};
use serde::{Deserialize, Serialize};

/// Tuning of the response layer's evidence accumulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseConfig {
    /// Per-round geometric decay of suspicion (`(0, 1]`; 1 never forgets).
    /// With the default 0.85, an isolated alarm fades below 0.2 within ten
    /// quiet rounds.
    pub decay: f64,
    /// Alarm-journal retention (entries).
    pub journal_capacity: usize,
}

impl Default for ResponseConfig {
    fn default() -> Self {
        Self {
            decay: 0.85,
            journal_capacity: 4096,
        }
    }
}

impl ResponseConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics when `decay ∉ (0, 1]` or `journal_capacity == 0`.
    pub fn validate(&self) {
        assert!(
            self.decay > 0.0 && self.decay <= 1.0,
            "suspicion decay must be in (0, 1], got {}",
            self.decay
        );
        assert!(self.journal_capacity >= 1, "journal capacity must be >= 1");
    }
}

/// One node's suspicion state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSuspicion {
    /// The node (raw id).
    pub node: u32,
    /// Suspicion as of `last_round` (decay since then is applied on read).
    pub suspicion: f64,
    /// The round of the node's most recent alarm.
    pub last_round: u64,
    /// Alarms folded into this value.
    pub alarms: u64,
}

/// The per-node suspicion accumulator. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuspectScorer {
    decay: f64,
    /// Per-node states, ascending by node id.
    suspicions: Vec<NodeSuspicion>,
}

impl SuspectScorer {
    /// A fresh scorer with the given per-round decay.
    ///
    /// # Panics
    /// Panics when `decay ∉ (0, 1]`.
    pub fn new(decay: f64) -> Self {
        assert!(
            decay > 0.0 && decay <= 1.0,
            "suspicion decay must be in (0, 1], got {decay}"
        );
        Self {
            decay,
            suspicions: Vec::new(),
        }
    }

    /// The configured per-round decay.
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// Folds one alarm of `node` at `round` into its suspicion: the
    /// accumulated value decays over the quiet gap, then gains `+1`.
    /// Alarms must be fed in canonical journal order; an out-of-order
    /// round (late drain) is treated as concurrent (no decay, no rewind).
    pub fn observe_alarm(&mut self, node: u32, round: u64) {
        match self.suspicions.binary_search_by_key(&node, |s| s.node) {
            Ok(i) => {
                let s = &mut self.suspicions[i];
                let gap = round.saturating_sub(s.last_round);
                s.suspicion = s.suspicion * self.decay.powi(gap.min(i32::MAX as u64) as i32) + 1.0;
                s.last_round = s.last_round.max(round);
                s.alarms += 1;
            }
            Err(i) => self.suspicions.insert(
                i,
                NodeSuspicion {
                    node,
                    suspicion: 1.0,
                    last_round: round,
                    alarms: 1,
                },
            ),
        }
    }

    /// The suspicion of `node` as of `round` (decayed over the quiet gap
    /// since its last alarm; 0 for a node that never alarmed).
    pub fn suspicion(&self, node: u32, round: u64) -> f64 {
        self.suspicions
            .binary_search_by_key(&node, |s| s.node)
            .ok()
            .map(|i| self.decayed(&self.suspicions[i], round))
            .unwrap_or(0.0)
    }

    /// The decayed suspicion of an entry from [`Self::suspicions`] as of
    /// `round` — the lookup-free read for callers already iterating the
    /// per-node states (a per-round policy pass would otherwise re-search
    /// the sorted vec for every entry it is holding).
    pub fn decayed(&self, entry: &NodeSuspicion, round: u64) -> f64 {
        let gap = round.saturating_sub(entry.last_round);
        entry.suspicion * self.decay.powi(gap.min(i32::MAX as u64) as i32)
    }

    /// All per-node suspicion states, ascending by node id.
    pub fn suspicions(&self) -> &[NodeSuspicion] {
        &self.suspicions
    }

    /// Single-linkage clusters of the alarmed estimates in `entries`
    /// (typically a recent journal window), linking entries within
    /// `radius` of each other, annotated with the member nodes' total
    /// suspicion as of `round`. Clusters come back ordered by their first
    /// entry — a pure function of the canonical journal order.
    pub fn clusters(&self, entries: &[JournalEntry], radius: f64, round: u64) -> Vec<AlarmCluster> {
        assert!(radius > 0.0, "cluster linking radius must be positive");
        if entries.is_empty() {
            return Vec::new();
        }
        let points: Vec<Point2> = entries.iter().map(|e| e.estimate).collect();
        let (mut min_x, mut min_y, mut max_x, mut max_y) = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for p in &points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let bounds = Rect::new(min_x, min_y, max_x.max(min_x), max_y.max(min_y)).expand(radius);
        let index = GridIndex::build(bounds, radius, &points);

        let mut cluster_of = vec![usize::MAX; points.len()];
        let mut clusters = Vec::new();
        let mut queue = Vec::new();
        for start in 0..points.len() {
            if cluster_of[start] != usize::MAX {
                continue;
            }
            let id = clusters.len();
            cluster_of[start] = id;
            queue.clear();
            queue.push(start);
            let mut members = vec![start];
            while let Some(i) = queue.pop() {
                index.for_each_within(points[i], radius, |j, _| {
                    if cluster_of[j] == usize::MAX {
                        cluster_of[j] = id;
                        queue.push(j);
                        members.push(j);
                    }
                });
            }
            // Canonical member order (BFS discovery order depends only on
            // the grid layout, but sorting removes even that).
            members.sort_unstable();
            let n = members.len() as f64;
            let centroid = members.iter().fold(Point2::new(0.0, 0.0), |acc, &i| {
                Point2::new(acc.x + points[i].x / n, acc.y + points[i].y / n)
            });
            let spread = members
                .iter()
                .map(|&i| centroid.distance(points[i]))
                .fold(0.0f64, f64::max);
            let mut nodes: Vec<u32> = members.iter().map(|&i| entries[i].node).collect();
            nodes.sort_unstable();
            nodes.dedup();
            let suspicion = nodes.iter().map(|&n| self.suspicion(n, round)).sum();
            let last_round = members.iter().map(|&i| entries[i].round).max().unwrap_or(0);
            clusters.push(AlarmCluster {
                centroid,
                radius: spread,
                nodes,
                alarms: members.len(),
                suspicion,
                last_round,
            });
        }
        clusters
    }
}

/// One spatial cluster of recent alarmed estimates: a candidate attack
/// focus (tight, suspicion-heavy) or a stretch of diffuse false alarms
/// (broad, light).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlarmCluster {
    /// Mean of the member estimates.
    pub centroid: Point2,
    /// Maximum member distance from the centroid.
    pub radius: f64,
    /// The distinct nodes whose alarms are in the cluster, ascending.
    pub nodes: Vec<u32>,
    /// Member alarms (≥ `nodes.len()` — repeat offenders count per alarm).
    pub alarms: usize,
    /// Total member-node suspicion at the evaluation round.
    pub suspicion: f64,
    /// The round of the newest member alarm (how *fresh* the focus is —
    /// quarantine policies skip foci that have already gone quiet).
    pub last_round: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(node: u32, round: u64, x: f64, y: f64) -> JournalEntry {
        JournalEntry {
            node,
            round,
            score: 1.0,
            statistic: 2.0,
            estimate: Point2::new(x, y),
        }
    }

    #[test]
    fn suspicion_accumulates_and_decays() {
        let mut scorer = SuspectScorer::new(0.5);
        scorer.observe_alarm(7, 10);
        assert_eq!(scorer.suspicion(7, 10), 1.0);
        // Two quiet rounds: 1.0 * 0.5^2.
        assert_eq!(scorer.suspicion(7, 12), 0.25);
        // A second alarm after the gap: decayed + 1.
        scorer.observe_alarm(7, 12);
        assert_eq!(scorer.suspicion(7, 12), 1.25);
        // Back-to-back alarms ramp monotonically toward the steady state
        // 1/(1 − decay) = 2.
        scorer.observe_alarm(7, 13);
        scorer.observe_alarm(7, 14);
        assert!(scorer.suspicion(7, 14) > 1.8);
        assert!(scorer.suspicion(7, 14) < 2.0);
        assert_eq!(scorer.suspicion(99, 14), 0.0, "never-alarmed node");
        assert_eq!(scorer.suspicions().len(), 1);
        assert_eq!(scorer.suspicions()[0].alarms, 4);
    }

    #[test]
    fn out_of_order_alarms_do_not_rewind() {
        let mut scorer = SuspectScorer::new(0.5);
        scorer.observe_alarm(3, 10);
        scorer.observe_alarm(3, 8); // late drain: treated as concurrent
        assert_eq!(scorer.suspicions()[0].last_round, 10);
        assert_eq!(scorer.suspicion(3, 10), 2.0);
    }

    #[test]
    fn clustering_separates_a_focus_from_diffuse_alarms() {
        let mut scorer = SuspectScorer::new(0.9);
        // A tight focus: three nodes repeatedly alarming near (100, 100)…
        let mut entries = Vec::new();
        for (i, node) in [1u32, 2, 3].iter().enumerate() {
            for r in 0..4u64 {
                scorer.observe_alarm(*node, r);
                entries.push(entry(
                    *node,
                    r,
                    100.0 + i as f64 * 5.0,
                    100.0 + r as f64 * 4.0,
                ));
            }
        }
        // …and two isolated false alarms far away.
        scorer.observe_alarm(50, 2);
        entries.push(entry(50, 2, 700.0, 700.0));
        scorer.observe_alarm(60, 3);
        entries.push(entry(60, 3, 400.0, 50.0));
        entries.sort_by_key(|e| (e.round, e.node));

        let clusters = scorer.clusters(&entries, 30.0, 4);
        assert_eq!(clusters.len(), 3);
        let focus = clusters
            .iter()
            .max_by(|a, b| a.suspicion.partial_cmp(&b.suspicion).unwrap())
            .unwrap();
        assert_eq!(focus.nodes, vec![1, 2, 3]);
        assert_eq!(focus.alarms, 12);
        assert!(focus.radius < 30.0, "focus is tight: {}", focus.radius);
        let lightest = clusters
            .iter()
            .map(|c| c.suspicion)
            .fold(f64::INFINITY, f64::min);
        assert!(
            focus.suspicion > 3.0 * lightest,
            "the focus dominates any singleton"
        );
        for cluster in &clusters {
            if cluster.nodes != focus.nodes {
                assert_eq!(cluster.alarms, 1, "false alarms stay singletons");
            }
        }
    }

    #[test]
    fn clustering_is_independent_of_entry_interleaving_within_a_round() {
        let scorer = SuspectScorer::new(0.9);
        let mut a = vec![
            entry(1, 0, 10.0, 10.0),
            entry(2, 0, 20.0, 10.0),
            entry(3, 0, 500.0, 500.0),
        ];
        let clusters_a = scorer.clusters(&a, 25.0, 1);
        a.swap(0, 1); // non-canonical order of the same set
        let mut b = a;
        b.sort_by_key(|e| (e.round, e.node));
        let clusters_b = scorer.clusters(&b, 25.0, 1);
        assert_eq!(clusters_a, clusters_b);
    }

    #[test]
    fn empty_entries_yield_no_clusters() {
        let scorer = SuspectScorer::new(0.9);
        assert!(scorer.clusters(&[], 10.0, 0).is_empty());
        // A single entry is its own (zero-radius) cluster.
        let one = scorer.clusters(&[entry(4, 1, 3.0, 4.0)], 10.0, 1);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].radius, 0.0);
        assert_eq!(one[0].nodes, vec![4]);
    }
}
