//! The alarm journal: a bounded, round-ordered record of what fired.
//!
//! The serving runtime's alarm stream is ephemeral — drained once, gone.
//! Attribution needs *history*: how often has this node fired, when, and
//! **where did its reports claim to be**? [`AlarmJournal`] keeps the last
//! `capacity` alarms in `(round, node)` order (the canonical order — shard
//! interleaving of the drained stream is sorted away on ingestion, which
//! is what makes everything downstream bit-deterministic in the shard
//! count) plus an unbounded-but-small per-node summary that survives entry
//! eviction.

use lad_geometry::Point2;
use lad_serve::Alarm;
use serde::{Deserialize, Serialize};

/// One journalled alarm (a flattened [`Alarm`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// The node that fired (raw id).
    pub node: u32,
    /// The round it fired in.
    pub round: u64,
    /// The per-round anomaly score at firing time.
    pub score: f64,
    /// The decision statistic at firing time.
    pub statistic: f64,
    /// The location the firing report claimed — the spatial anchor
    /// clustering works on.
    pub estimate: Point2,
}

impl From<&Alarm> for JournalEntry {
    fn from(alarm: &Alarm) -> Self {
        JournalEntry {
            node: alarm.node.0,
            round: alarm.round,
            score: alarm.score,
            statistic: alarm.statistic,
            estimate: alarm.estimate,
        }
    }
}

/// The per-node alarm summary (kept even after the node's entries age out
/// of the bounded journal).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeAlarmHistory {
    /// The node (raw id).
    pub node: u32,
    /// Total alarms this node ever fired.
    pub alarms: u64,
    /// Round of its first alarm.
    pub first_round: u64,
    /// Round of its most recent alarm.
    pub last_round: u64,
}

/// A bounded, round-ordered alarm store with per-node history. See the
/// [module docs](self).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlarmJournal {
    /// Maximum retained entries; the oldest are evicted first.
    capacity: usize,
    /// Retained entries, ascending by `(round, node)`.
    entries: Vec<JournalEntry>,
    /// Entries evicted so far (so operators can tell the journal window
    /// from the full history).
    evicted: u64,
    /// Per-node summaries, ascending by node id.
    histories: Vec<NodeAlarmHistory>,
}

impl AlarmJournal {
    /// An empty journal retaining at most `capacity` entries.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "journal capacity must be >= 1");
        Self {
            capacity,
            entries: Vec::new(),
            evicted: 0,
            histories: Vec::new(),
        }
    }

    /// Ingests a drained alarm batch. The batch is canonicalised to
    /// `(round, node)` order first — the runtime's drained stream
    /// interleaves shards arbitrarily, and attribution must not depend on
    /// that interleaving.
    pub fn ingest(&mut self, alarms: &[Alarm]) {
        if alarms.is_empty() {
            return;
        }
        let mut batch: Vec<JournalEntry> = alarms.iter().map(JournalEntry::from).collect();
        batch.sort_by_key(|e| (e.round, e.node));
        let in_order = self
            .entries
            .last()
            .is_none_or(|last| (last.round, last.node) <= (batch[0].round, batch[0].node));
        for entry in &batch {
            match self.histories.binary_search_by_key(&entry.node, |h| h.node) {
                Ok(i) => {
                    let h = &mut self.histories[i];
                    h.alarms += 1;
                    h.first_round = h.first_round.min(entry.round);
                    h.last_round = h.last_round.max(entry.round);
                }
                Err(i) => self.histories.insert(
                    i,
                    NodeAlarmHistory {
                        node: entry.node,
                        alarms: 1,
                        first_round: entry.round,
                        last_round: entry.round,
                    },
                ),
            }
        }
        self.entries.extend(batch);
        if !in_order {
            // A late drain delivered alarms older than the newest entry;
            // restore the canonical order (rare, and the journal is small).
            self.entries.sort_by_key(|e| (e.round, e.node));
        }
        if self.entries.len() > self.capacity {
            let excess = self.entries.len() - self.capacity;
            self.entries.drain(..excess);
            self.evicted += excess as u64;
        }
    }

    /// The retained entries, ascending by `(round, node)`.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// The retained entries with `round >= since` (a suffix — entries are
    /// round-ordered).
    pub fn entries_since(&self, since: u64) -> &[JournalEntry] {
        let start = self.entries.partition_point(|e| e.round < since);
        &self.entries[start..]
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted by the retention bound so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Total alarms ever ingested (retained + evicted).
    pub fn total_alarms(&self) -> u64 {
        self.entries.len() as u64 + self.evicted
    }

    /// The per-node summary of `node`, if it ever alarmed.
    pub fn history(&self, node: u32) -> Option<&NodeAlarmHistory> {
        self.histories
            .binary_search_by_key(&node, |h| h.node)
            .ok()
            .map(|i| &self.histories[i])
    }

    /// All per-node summaries, ascending by node id.
    pub fn histories(&self) -> &[NodeAlarmHistory] {
        &self.histories
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_net::NodeId;

    fn alarm(node: u32, round: u64, x: f64) -> Alarm {
        Alarm {
            node: NodeId(node),
            round,
            score: 10.0 + x,
            statistic: 20.0 + x,
            estimate: Point2::new(x, x + 1.0),
        }
    }

    #[test]
    fn ingestion_canonicalises_shard_interleaving() {
        let mut a = AlarmJournal::new(16);
        let mut b = AlarmJournal::new(16);
        let batch = vec![alarm(5, 2, 0.0), alarm(1, 1, 1.0), alarm(3, 2, 2.0)];
        let mut reversed = batch.clone();
        reversed.reverse();
        a.ingest(&batch);
        b.ingest(&reversed);
        assert_eq!(a, b, "entry order is independent of drain interleaving");
        let keys: Vec<(u64, u32)> = a.entries().iter().map(|e| (e.round, e.node)).collect();
        assert_eq!(keys, vec![(1, 1), (2, 3), (2, 5)]);
    }

    #[test]
    fn per_node_history_survives_eviction() {
        let mut journal = AlarmJournal::new(3);
        for round in 0..10 {
            journal.ingest(&[alarm(7, round, round as f64)]);
        }
        assert_eq!(journal.len(), 3);
        assert_eq!(journal.evicted(), 7);
        assert_eq!(journal.total_alarms(), 10);
        let history = journal.history(7).expect("node 7 alarmed");
        assert_eq!(history.alarms, 10);
        assert_eq!(history.first_round, 0);
        assert_eq!(history.last_round, 9);
        assert!(journal.history(8).is_none());
        // The retained window is the newest entries.
        assert_eq!(journal.entries()[0].round, 7);
    }

    #[test]
    fn entries_since_returns_the_round_suffix() {
        let mut journal = AlarmJournal::new(16);
        journal.ingest(&[alarm(1, 1, 0.0), alarm(2, 3, 1.0), alarm(3, 5, 2.0)]);
        assert_eq!(journal.entries_since(0).len(), 3);
        assert_eq!(journal.entries_since(3).len(), 2);
        assert_eq!(journal.entries_since(6).len(), 0);
    }

    #[test]
    fn late_drains_are_reordered() {
        let mut journal = AlarmJournal::new(16);
        journal.ingest(&[alarm(1, 5, 0.0)]);
        journal.ingest(&[alarm(2, 3, 1.0)]);
        let keys: Vec<(u64, u32)> = journal
            .entries()
            .iter()
            .map(|e| (e.round, e.node))
            .collect();
        assert_eq!(keys, vec![(3, 2), (5, 1)]);
    }

    #[test]
    fn json_round_trip() {
        let mut journal = AlarmJournal::new(4);
        journal.ingest(&[alarm(1, 1, 0.5), alarm(2, 2, 1.5)]);
        let json = serde_json::to_string(&journal).unwrap();
        let back: AlarmJournal = serde_json::from_str(&json).unwrap();
        assert_eq!(journal, back);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        AlarmJournal::new(0);
    }
}
