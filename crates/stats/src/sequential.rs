//! Sequential (temporal) detection over per-round anomaly scores.
//!
//! The paper frames LAD as a one-shot test: one observation, one verdict. A
//! deployed service sees a *stream* — every node reports a localization
//! round after round — and the operational questions become *time to
//! detection* after attack onset and *false alarms per hour* under clean
//! traffic. This module provides the O(1)-state per-node decision rules the
//! serving runtime (`lad_serve`) runs on top of per-round LAD scores:
//!
//! * [`SequentialDetector::Cusum`] — the one-sided CUSUM recursion
//!   `s ← max(0, s + score − reference)`, alarm when `s > threshold`.
//!   Accumulates small persistent shifts that a single round would miss.
//! * [`SequentialDetector::Ewma`] — the exponentially weighted moving
//!   average `z ← (1−λ)·z + λ·score`, alarm when `z > threshold`. Smooths
//!   per-round noise; the control-limit sits far below the one-shot
//!   threshold in score units because the EWMA variance is only
//!   `λ/(2−λ)` of the per-round score variance.
//! * [`SequentialDetector::WindowedCount`] — alarm when at least
//!   `min_count` of the last `window` scores exceeded `score_threshold`.
//!   With `window = min_count = 1` this is exactly the repeated one-shot
//!   test (the paper's detector applied every round) and serves as the
//!   baseline the sequential rules are compared against.
//!
//! Every rule carries only a few machine words of state per node
//! ([`SequentialState`]), so a shard can hold millions of node states.
//!
//! # Calibration
//!
//! Each rule has a `calibrate_*` constructor that takes clean per-node score
//! streams (e.g. the warm-up rounds of a traffic model built over the
//! evaluation substrate's clean-score collection) and a **target per-round
//! false-alarm rate**. Calibration replays the detector over the clean
//! streams with the deployed semantics — **state resets after every
//! alarm**, the `lad_serve` default — and picks the smallest threshold
//! whose replayed alarm rate does not exceed the target (for an alarm rate
//! `α` this is the classic average-run-length calibration `ARL₀ ≥ 1/α`).
//! That yields a hard guarantee *on the calibration streams themselves*:
//!
//! > replayed with reset-on-alarm, the fraction of alarm rounds is at most
//! > the target rate
//!
//! (the guarantee cannot fail: at the largest replayed statistic the
//! detector never fires at all, so the search always has a feasible
//! point). On fresh clean streams from the same distribution the realised
//! rate concentrates around the target with the usual Monte-Carlo error;
//! the property tests assert both the hard bound and a slack bound on
//! held-out streams.

use crate::percentile;
use serde::{Deserialize, Serialize};

/// The per-node state of a sequential detector: a few machine words,
/// regardless of how many rounds have been processed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SequentialState {
    /// The decision statistic (CUSUM sum or EWMA value; unused by the
    /// windowed-count rule).
    pub statistic: f64,
    /// Bitmask of recent per-round exceedances, newest in bit 0 (only the
    /// windowed-count rule uses it).
    pub recent: u64,
    /// Rounds processed since the last reset.
    pub rounds: u64,
}

/// An O(1)-state sequential decision rule over per-round anomaly scores.
///
/// The detector itself is immutable and shared; per-node state lives in a
/// [`SequentialState`] owned by the caller (one per node). See the
/// [module docs](self) for the rules and the calibration contract.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SequentialDetector {
    /// One-sided CUSUM: `s ← max(0, s + score − reference)`, alarm when
    /// `s > threshold`.
    Cusum {
        /// The drift reference `k`: clean scores should fall below it most
        /// of the time, attacked scores above it.
        reference: f64,
        /// The decision interval `h`.
        threshold: f64,
    },
    /// EWMA: `z ← (1−λ)·z + λ·score` (initialised at `baseline`), alarm
    /// when `z > threshold`.
    Ewma {
        /// The smoothing factor `λ ∈ (0, 1]` (1 = no smoothing).
        lambda: f64,
        /// The clean-score mean the recursion starts from.
        baseline: f64,
        /// The control limit.
        threshold: f64,
    },
    /// Windowed exceedance count: alarm when at least `min_count` of the
    /// last `window` scores were strictly above `score_threshold`. With
    /// `window = min_count = 1` this is the repeated one-shot test.
    WindowedCount {
        /// Per-round score threshold.
        score_threshold: f64,
        /// Window length in rounds (1 ..= 64).
        window: u32,
        /// Alarm when this many exceedances are in the window (≥ 1).
        min_count: u32,
    },
}

impl SequentialDetector {
    /// The state a fresh node starts from (also the post-[`reset`] state).
    ///
    /// [`reset`]: Self::reset
    pub fn initial_state(&self) -> SequentialState {
        SequentialState {
            statistic: match *self {
                SequentialDetector::Ewma { baseline, .. } => baseline,
                _ => 0.0,
            },
            recent: 0,
            rounds: 0,
        }
    }

    /// Feeds one round's score into `state` and returns whether the rule
    /// raises an alarm this round.
    #[inline]
    pub fn update(&self, state: &mut SequentialState, score: f64) -> bool {
        state.rounds += 1;
        match *self {
            SequentialDetector::Cusum {
                reference,
                threshold,
            } => {
                state.statistic = (state.statistic + score - reference).max(0.0);
                state.statistic > threshold
            }
            SequentialDetector::Ewma {
                lambda, threshold, ..
            } => {
                state.statistic = (1.0 - lambda) * state.statistic + lambda * score;
                state.statistic > threshold
            }
            SequentialDetector::WindowedCount {
                score_threshold,
                window,
                min_count,
            } => {
                let mask = if window >= 64 {
                    u64::MAX
                } else {
                    (1u64 << window) - 1
                };
                state.recent = ((state.recent << 1) | u64::from(score > score_threshold)) & mask;
                state.recent.count_ones() >= min_count
            }
        }
    }

    /// Resets `state` exactly to [`Self::initial_state`] — after a reset the
    /// node's decision sequence is bit-identical to a fresh node's.
    #[inline]
    pub fn reset(&self, state: &mut SequentialState) {
        *state = self.initial_state();
    }

    /// The current decision statistic of `state` in a rule-independent form
    /// (CUSUM sum, EWMA value, or the windowed exceedance count).
    pub fn statistic(&self, state: &SequentialState) -> f64 {
        match self {
            SequentialDetector::WindowedCount { .. } => state.recent.count_ones() as f64,
            _ => state.statistic,
        }
    }

    /// Short rule name for labels and reports.
    pub fn name(&self) -> &'static str {
        match self {
            SequentialDetector::Cusum { .. } => "cusum",
            SequentialDetector::Ewma { .. } => "ewma",
            SequentialDetector::WindowedCount {
                window: 1,
                min_count: 1,
                ..
            } => "one-shot",
            SequentialDetector::WindowedCount { .. } => "windowed-count",
        }
    }

    // ---- calibration -------------------------------------------------------

    /// Calibrates a CUSUM rule on clean score streams at a target per-round
    /// false-alarm rate. The drift reference is the pooled
    /// [`CUSUM_REFERENCE_QUANTILE`] clean quantile; the decision interval
    /// is the smallest replayed-statistic value meeting the target under
    /// reset-on-alarm replay (see the [module docs](self)).
    ///
    /// # Panics
    /// Panics when the streams are empty or `target_far ∉ (0, 1)`.
    pub fn calibrate_cusum<'a, I>(clean_streams: I, target_far: f64) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let streams: Vec<&[f64]> = clean_streams.into_iter().collect();
        let pooled = pool(&streams);
        let reference = percentile::quantile(&pooled, CUSUM_REFERENCE_QUANTILE)
            .expect("calibration needs at least one clean score");
        Self::calibrate_cusum_with_reference_inner(&streams, target_far, reference)
    }

    /// Like [`Self::calibrate_cusum`] with an explicit drift reference.
    pub fn calibrate_cusum_with_reference<'a, I>(
        clean_streams: I,
        target_far: f64,
        reference: f64,
    ) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let streams: Vec<&[f64]> = clean_streams.into_iter().collect();
        Self::calibrate_cusum_with_reference_inner(&streams, target_far, reference)
    }

    fn calibrate_cusum_with_reference_inner(
        streams: &[&[f64]],
        target_far: f64,
        reference: f64,
    ) -> Self {
        let probe = SequentialDetector::Cusum {
            reference,
            threshold: f64::INFINITY,
        };
        let threshold = fit_threshold(
            |threshold| SequentialDetector::Cusum {
                reference,
                threshold,
            },
            replay(&probe, streams),
            streams,
            target_far,
        );
        SequentialDetector::Cusum {
            reference,
            threshold,
        }
    }

    /// Calibrates an EWMA rule (smoothing factor `lambda`) on clean score
    /// streams at a target per-round false-alarm rate. The baseline is the
    /// pooled clean mean; the control limit is the smallest
    /// replayed-statistic value meeting the target under reset-on-alarm
    /// replay (see the [module docs](self)).
    ///
    /// # Panics
    /// Panics when the streams are empty, `target_far ∉ (0, 1)` or
    /// `lambda ∉ (0, 1]`.
    pub fn calibrate_ewma<'a, I>(clean_streams: I, target_far: f64, lambda: f64) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "EWMA lambda must be in (0, 1], got {lambda}"
        );
        let streams: Vec<&[f64]> = clean_streams.into_iter().collect();
        let pooled = pool(&streams);
        let baseline = pooled.iter().sum::<f64>() / pooled.len() as f64;
        let probe = SequentialDetector::Ewma {
            lambda,
            baseline,
            threshold: f64::INFINITY,
        };
        let threshold = fit_threshold(
            |threshold| SequentialDetector::Ewma {
                lambda,
                baseline,
                threshold,
            },
            replay(&probe, &streams),
            &streams,
            target_far,
        );
        SequentialDetector::Ewma {
            lambda,
            baseline,
            threshold,
        }
    }

    /// Calibrates the repeated one-shot baseline (`window = min_count = 1`):
    /// the per-round score threshold is the empirical clean-score quantile
    /// at `1 − target_far` (the memoryless case of
    /// [`Self::calibrate_windowed`]).
    ///
    /// # Panics
    /// Panics when the streams are empty or `target_far ∉ (0, 1)`.
    pub fn calibrate_one_shot<'a, I>(clean_streams: I, target_far: f64) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        Self::calibrate_windowed(clean_streams, target_far, 1, 1)
    }

    /// Calibrates a windowed-count rule: the per-round score threshold is
    /// the smallest clean score whose reset-on-alarm replay meets the
    /// target alarm rate. For `min_count = window = 1` (the repeated
    /// one-shot baseline) the replay is memoryless and this reduces to the
    /// empirical clean-score quantile at `1 − target_far`.
    ///
    /// # Panics
    /// Panics when the streams are empty, `target_far ∉ (0, 1)`,
    /// `window ∉ 1..=64`, or `min_count ∉ 1..=window`.
    pub fn calibrate_windowed<'a, I>(
        clean_streams: I,
        target_far: f64,
        window: u32,
        min_count: u32,
    ) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        assert!(
            (1..=64).contains(&window),
            "window must be in 1..=64, got {window}"
        );
        assert!(
            (1..=window).contains(&min_count),
            "min_count must be in 1..=window, got {min_count}"
        );
        let streams: Vec<&[f64]> = clean_streams.into_iter().collect();
        let pooled = pool(&streams);
        let score_threshold = fit_threshold(
            |score_threshold| SequentialDetector::WindowedCount {
                score_threshold,
                window,
                min_count,
            },
            pooled,
            &streams,
            target_far,
        );
        SequentialDetector::WindowedCount {
            score_threshold,
            window,
            min_count,
        }
    }
}

/// The pooled clean quantile used as the CUSUM drift reference. The
/// reference must sit **above nearly every node's own clean-score mean**,
/// not just the pooled median: the population is heterogeneous (a node in a
/// sparse neighbourhood scores persistently higher than the pooled
/// average), and any node whose clean mean exceeds the reference drifts
/// upward forever, forcing calibration to inflate the decision interval for
/// everyone. A high quantile keeps every node's clean drift negative while
/// moderately anomalous rounds still accumulate.
pub const CUSUM_REFERENCE_QUANTILE: f64 = 0.92;

/// The false-alarm rate `detector` realises on `streams` when replayed
/// with the deployed semantics: fresh state per stream, **reset after
/// every alarm** (the `lad_serve` default). This is the quantity the
/// `calibrate_*` constructors drive to the target — for an alarm rate `α`
/// it is exactly the reciprocal of the clean average run length `ARL₀`.
pub fn reset_replay_alarm_rate(detector: &SequentialDetector, streams: &[&[f64]]) -> f64 {
    let mut alarms = 0u64;
    let mut rounds = 0u64;
    for stream in streams {
        let mut state = detector.initial_state();
        for &score in *stream {
            rounds += 1;
            if detector.update(&mut state, score) {
                alarms += 1;
                detector.reset(&mut state);
            }
        }
    }
    if rounds == 0 {
        0.0
    } else {
        alarms as f64 / rounds as f64
    }
}

/// The calibration primitive: the smallest threshold among `candidates`
/// whose reset-on-alarm replay over `streams` alarms in at most a
/// `target_far` fraction of rounds. The alarm rate is (essentially)
/// nonincreasing in the threshold, so a binary search finds the frontier; a
/// final verification walk guarantees the hard bound even off the monotone
/// path. Always feasible: at the largest replayed statistic the detector
/// never fires.
fn fit_threshold(
    make: impl Fn(f64) -> SequentialDetector,
    mut candidates: Vec<f64>,
    streams: &[&[f64]],
    target_far: f64,
) -> f64 {
    assert!(
        target_far > 0.0 && target_far < 1.0,
        "target false-alarm rate must be in (0, 1), got {target_far}"
    );
    assert!(
        !candidates.is_empty(),
        "calibration needs at least one clean statistic"
    );
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("NaN statistic"));
    candidates.dedup();
    let rate = |threshold: f64| reset_replay_alarm_rate(&make(threshold), streams);

    // Binary search for the lowest candidate meeting the target…
    let (mut lo, mut hi) = (0usize, candidates.len() - 1);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if rate(candidates[mid]) <= target_far {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    // …then walk up until the bound verifiably holds (no-ops when the rate
    // really is monotone). The top candidate never alarms: trajectories
    // match the threshold-free replay until the first alarm, and no
    // replayed statistic strictly exceeds the maximum.
    while rate(candidates[lo]) > target_far {
        lo += 1;
    }
    candidates[lo]
}

/// Replays `detector` over each stream independently (fresh state per
/// stream, no alarm resets — the threshold is infinite) and returns every
/// per-round decision statistic: the candidate threshold set.
fn replay(detector: &SequentialDetector, streams: &[&[f64]]) -> Vec<f64> {
    let mut stats = Vec::new();
    for stream in streams {
        let mut state = detector.initial_state();
        for &score in *stream {
            detector.update(&mut state, score);
            stats.push(detector.statistic(&state));
        }
    }
    assert!(
        !stats.is_empty(),
        "calibration needs at least one clean score"
    );
    stats
}

fn pool(streams: &[&[f64]]) -> Vec<f64> {
    let mut pooled = Vec::new();
    for stream in streams {
        pooled.extend_from_slice(stream);
    }
    assert!(
        !pooled.is_empty(),
        "calibration needs at least one clean score"
    );
    pooled
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// A reproducible "clean" score stream: positive, right-skewed (squared
    /// uniform), the shape LAD metrics produce on clean traffic.
    fn clean_stream(seed: u64, len: usize) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..1.0);
                10.0 * u * u
            })
            .collect()
    }

    fn detectors_for(clean: &[f64], target: f64) -> Vec<SequentialDetector> {
        let streams = [clean];
        vec![
            SequentialDetector::calibrate_cusum(streams, target),
            SequentialDetector::calibrate_ewma(streams, target, 0.25),
            SequentialDetector::calibrate_one_shot(streams, target),
        ]
    }

    /// Deployed-semantics replay: reset after every alarm (what calibration
    /// targets and what `lad_serve` runs by default).
    fn alarm_fraction(detector: &SequentialDetector, stream: &[f64]) -> f64 {
        reset_replay_alarm_rate(detector, &[stream])
    }

    #[test]
    fn one_shot_matches_the_raw_quantile_construction() {
        let clean = clean_stream(7, 500);
        let target = 0.02;
        let SequentialDetector::WindowedCount {
            score_threshold,
            window,
            min_count,
        } = SequentialDetector::calibrate_one_shot([clean.as_slice()], target)
        else {
            panic!("one-shot calibration must produce a windowed-count rule");
        };
        assert_eq!((window, min_count), (1, 1));
        assert!(percentile::exceedance_fraction(&clean, score_threshold) <= target);
    }

    #[test]
    fn windowed_count_with_window_one_equals_repeated_one_shot() {
        let clean = clean_stream(8, 400);
        let one_shot = SequentialDetector::calibrate_one_shot([clean.as_slice()], 0.05);
        let SequentialDetector::WindowedCount {
            score_threshold, ..
        } = one_shot
        else {
            unreachable!()
        };
        let fresh = clean_stream(9, 300);
        let mut state = one_shot.initial_state();
        for &s in &fresh {
            let alarm = one_shot.update(&mut state, s);
            assert_eq!(alarm, s > score_threshold);
        }
    }

    #[test]
    fn windowed_count_needs_min_count_exceedances() {
        let det = SequentialDetector::WindowedCount {
            score_threshold: 1.0,
            window: 4,
            min_count: 2,
        };
        let mut state = det.initial_state();
        assert!(!det.update(&mut state, 5.0)); // 1 exceedance in window
        assert!(det.update(&mut state, 5.0)); // 2 in window
                                              // Both exceedances stay in the 4-round window for two more rounds…
        assert!(det.update(&mut state, 0.0));
        assert!(det.update(&mut state, 0.0));
        // …then the first slides out and the count drops below min_count.
        assert!(!det.update(&mut state, 0.0));
        assert!(!det.update(&mut state, 5.0)); // back to 1 in window
    }

    #[test]
    fn windowed_calibration_meets_the_target_alarm_rate() {
        let clean = clean_stream(10, 2000);
        let target = 0.01;
        let det = SequentialDetector::calibrate_windowed([clean.as_slice()], target, 8, 3);
        assert!(alarm_fraction(&det, &clean) <= target + 1e-12);
        // A multi-exceedance requirement can only make the rule stricter
        // than the one-shot baseline at the same score threshold.
        let one_shot = SequentialDetector::calibrate_one_shot([clean.as_slice()], target);
        let (
            SequentialDetector::WindowedCount {
                score_threshold: strict,
                ..
            },
            SequentialDetector::WindowedCount {
                score_threshold: single,
                ..
            },
        ) = (det, one_shot)
        else {
            unreachable!()
        };
        assert!(strict <= single + 1e-12);
    }

    #[test]
    fn statistic_reports_the_rule_specific_value() {
        let cusum = SequentialDetector::Cusum {
            reference: 1.0,
            threshold: 100.0,
        };
        let mut state = cusum.initial_state();
        cusum.update(&mut state, 3.0);
        assert!((cusum.statistic(&state) - 2.0).abs() < 1e-12);

        let windowed = SequentialDetector::WindowedCount {
            score_threshold: 0.0,
            window: 8,
            min_count: 8,
        };
        let mut state = windowed.initial_state();
        windowed.update(&mut state, 1.0);
        windowed.update(&mut state, 1.0);
        assert_eq!(windowed.statistic(&state), 2.0);
    }

    #[test]
    fn serde_round_trip_preserves_detector_and_state() {
        let clean = clean_stream(11, 200);
        for det in detectors_for(&clean, 0.05) {
            let json = serde_json::to_string(&det).unwrap();
            let back: SequentialDetector = serde_json::from_str(&json).unwrap();
            assert_eq!(det, back);
            let mut state = det.initial_state();
            det.update(&mut state, 4.2);
            let sjson = serde_json::to_string(&state).unwrap();
            let sback: SequentialState = serde_json::from_str(&sjson).unwrap();
            assert_eq!(state, sback);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Hard bound: replayed over the calibration stream itself with the
        /// deployed reset-on-alarm semantics (exactly what calibration
        /// targets — see the module docs), every calibrated rule's alarm
        /// fraction is at most the target.
        #[test]
        fn calibrated_far_bound_holds_on_the_calibration_stream(
            seed in 0u64..1000,
            len in 200usize..600,
        ) {
            let clean = clean_stream(seed, len);
            for target in [0.01, 0.05, 0.15] {
                for det in detectors_for(&clean, target) {
                    let far = alarm_fraction(&det, &clean);
                    prop_assert!(
                        far <= target + 1e-12,
                        "{} realises FAR {far} > target {target}",
                        det.name()
                    );
                }
            }
        }

        /// Held-out bound: on a fresh clean stream from the same
        /// distribution, the realised rate stays within Monte-Carlo slack of
        /// the target (documented as 3·target + 8/n).
        #[test]
        fn calibrated_far_is_near_target_on_heldout_streams(
            seed in 0u64..1000,
        ) {
            let clean = clean_stream(seed, 800);
            let fresh = clean_stream(seed.wrapping_add(0xF00D), 800);
            let target = 0.05;
            let slack = 3.0 * target + 8.0 / fresh.len() as f64;
            for det in detectors_for(&clean, target) {
                let far = alarm_fraction(&det, &fresh);
                prop_assert!(
                    far <= slack,
                    "{} held-out FAR {far} > slack {slack}",
                    det.name()
                );
            }
        }

        /// A large persistent upward shift always fires, and quickly.
        #[test]
        fn persistent_large_shift_always_fires(
            seed in 0u64..1000,
            len in 200usize..500,
        ) {
            let clean = clean_stream(seed, len);
            let max_clean = clean.iter().cloned().fold(f64::MIN, f64::max);
            let shift = 4.0 * max_clean + 50.0;
            for det in detectors_for(&clean, 0.02) {
                let mut state = det.initial_state();
                let fired = (0..64).any(|_| det.update(&mut state, shift));
                prop_assert!(fired, "{} never fired on persistent shift", det.name());
            }
        }

        /// Resets are exact: after `reset`, the decision sequence is
        /// bit-identical to a fresh node's (state equality included).
        #[test]
        fn state_resets_are_exact(
            seed in 0u64..1000,
            prefix in 1usize..50,
        ) {
            let clean = clean_stream(seed, 120 + prefix);
            for det in detectors_for(&clean[..100], 0.05) {
                let mut reset_state = det.initial_state();
                for &s in &clean[..prefix] {
                    det.update(&mut reset_state, s);
                }
                det.reset(&mut reset_state);
                prop_assert_eq!(reset_state, det.initial_state());
                let mut fresh_state = det.initial_state();
                for &s in &clean[prefix..] {
                    let a = det.update(&mut reset_state, s);
                    let b = det.update(&mut fresh_state, s);
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(reset_state, fresh_state);
                }
            }
        }
    }
}
