//! Streaming score accumulation: ROC / detection-rate / percentile queries
//! in O(bins) memory instead of O(samples).
//!
//! The evaluation of the LAD paper compares a *clean* and an *attacked*
//! score distribution at every point of a parameter grid. Buffering every
//! score in a `Vec<f64>` caps how many Monte-Carlo samples a sweep can
//! afford; a [`ScoreAccumulator`] instead keeps
//!
//! * an **exact buffer** while the sample is small (`exact_limit` values, so
//!   small runs stay bit-identical to the sort-based [`RocCurve`]), and
//! * a **fixed-layout log-domain histogram** once the sample outgrows the
//!   buffer: value `v ≥ 0` lands in bin `⌊bins · ln(1+v) / ln(1+vmax)⌋`,
//!   negative values in a dedicated underflow bin, `v ≥ vmax` in an overflow
//!   bin.
//!
//! The bin layout is a pure function of the [`AccumulatorConfig`] — never of
//! the data — so accumulators can be merged in any grouping with bit-identical
//! results (bin counts are `u64` sums), which is what keeps grid-parallel
//! evaluation deterministic regardless of thread count.
//!
//! # Accuracy bound
//!
//! Every binned operating point is an **exactly achievable** operating point
//! of the underlying sample: "alarm when score ≥ edge" has exactly-known
//! clean/attacked counts. The binned ROC is therefore the exact empirical ROC
//! evaluated on the subset of thresholds that fall on bin edges, which gives
//! hard error bounds in terms of the largest probability mass `ε_c` (clean) /
//! `ε_a` (attacked) that any single bin holds:
//!
//! * **AUC**: `|auc_binned − auc_exact| ≤ min(ε_c, ε_a)`,
//! * **DR at an FP budget**: `dr_exact − ε_a ≤ dr_binned ≤ dr_exact`
//!   (the binned value never overstates the detector),
//! * **quantiles / exceedance**: off by at most one bin, i.e. a relative
//!   value error of `(1+vmax)^(1/bins) − 1` (≈ 0.7 % for the defaults).
//!
//! [`ScoreAccumulator::max_bin_fraction`] reports the realised `ε`, and the
//! property tests below assert the AUC and DR bounds against the exact
//! [`RocCurve`] on random score sets.

use crate::ks::ks_statistic;
use crate::percentile;
use crate::roc::{RocCurve, RocPoint};
use serde::{Deserialize, Serialize};

/// Shape of a [`ScoreAccumulator`]: bin count, log-domain range and the
/// exact-buffer spill threshold. The layout is data-independent so equally
/// configured accumulators merge exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccumulatorConfig {
    /// Number of interior histogram bins (resolution of the binned mode).
    pub bins: usize,
    /// Keep an exact score buffer until it would exceed this many values;
    /// afterwards spill into the histogram. `usize::MAX` never spills
    /// (exact mode, O(samples) memory — the legacy behaviour).
    pub exact_limit: usize,
    /// Upper edge of the log-domain range; scores `≥ vmax` share the
    /// overflow bin (indistinguishable from each other, all "maximally
    /// anomalous").
    pub vmax: f64,
}

impl Default for AccumulatorConfig {
    fn default() -> Self {
        Self {
            bins: 2048,
            exact_limit: 4096,
            vmax: 1e6,
        }
    }
}

impl AccumulatorConfig {
    /// A configuration that never spills: exact results, O(samples) memory.
    pub fn exact() -> Self {
        Self {
            exact_limit: usize::MAX,
            ..Self::default()
        }
    }

    /// The relative value resolution of the binned mode: scores whose ratio
    /// `(1+a)/(1+b)` is below `1 +` this value may share a bin.
    pub fn relative_resolution(&self) -> f64 {
        ((1.0 + self.vmax).ln() / self.bins as f64).exp_m1()
    }

    /// The bin index of `value` (interior bins only; the caller handles
    /// underflow/overflow).
    fn bin_of(&self, value: f64) -> usize {
        let scaled = value.ln_1p() / (1.0 + self.vmax).ln() * self.bins as f64;
        (scaled as usize).min(self.bins - 1)
    }

    /// The lower edge of interior bin `i` (`i == bins` gives `vmax`).
    fn edge(&self, i: usize) -> f64 {
        (i as f64 / self.bins as f64 * (1.0 + self.vmax).ln()).exp_m1()
    }
}

/// Binned state: interior counts plus saturating edge bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Bins {
    counts: Vec<u64>,
    /// Scores `< 0` (no metric should produce them, but they must not be
    /// silently misfiled).
    underflow: u64,
    /// Scores `≥ vmax`.
    overflow: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum State {
    Exact(Vec<f64>),
    Binned(Bins),
}

/// A streaming accumulator for one score distribution. See the
/// [module docs](self) for the design and accuracy bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreAccumulator {
    config: AccumulatorConfig,
    state: State,
}

impl ScoreAccumulator {
    /// Creates an empty accumulator with the given layout.
    pub fn new(config: AccumulatorConfig) -> Self {
        assert!(config.bins > 0, "accumulator needs at least one bin");
        assert!(
            config.vmax.is_finite() && config.vmax > 0.0,
            "vmax must be a positive finite score"
        );
        Self {
            config,
            state: State::Exact(Vec::new()),
        }
    }

    /// The accumulator's layout.
    pub fn config(&self) -> &AccumulatorConfig {
        &self.config
    }

    /// Number of scores accumulated.
    pub fn count(&self) -> u64 {
        match &self.state {
            State::Exact(v) => v.len() as u64,
            State::Binned(b) => b.underflow + b.overflow + b.counts.iter().sum::<u64>(),
        }
    }

    /// `true` while the accumulator still holds every score exactly.
    pub fn is_exact(&self) -> bool {
        matches!(self.state, State::Exact(_))
    }

    /// The raw scores, available only in exact mode.
    pub fn exact_scores(&self) -> Option<&[f64]> {
        match &self.state {
            State::Exact(v) => Some(v),
            State::Binned(_) => None,
        }
    }

    /// Consumes the accumulator, returning the raw scores when still exact.
    pub fn into_exact_scores(self) -> Option<Vec<f64>> {
        match self.state {
            State::Exact(v) => Some(v),
            State::Binned(_) => None,
        }
    }

    fn spill(&mut self) {
        if let State::Exact(values) = &mut self.state {
            let values = std::mem::take(values);
            let mut bins = Bins {
                counts: vec![0; self.config.bins],
                underflow: 0,
                overflow: 0,
            };
            for v in values {
                Self::bin_add(&self.config, &mut bins, v);
            }
            self.state = State::Binned(bins);
        }
    }

    fn bin_add(config: &AccumulatorConfig, bins: &mut Bins, value: f64) {
        assert!(!value.is_nan(), "NaN score");
        if value < 0.0 {
            bins.underflow += 1;
        } else if value >= config.vmax {
            bins.overflow += 1;
        } else {
            bins.counts[config.bin_of(value)] += 1;
        }
    }

    /// Adds one score.
    pub fn add(&mut self, value: f64) {
        match &mut self.state {
            State::Exact(v) => {
                assert!(!value.is_nan(), "NaN score");
                if v.len() >= self.config.exact_limit {
                    self.spill();
                    self.add(value);
                } else {
                    v.push(value);
                }
            }
            State::Binned(bins) => Self::bin_add(&self.config, bins, value),
        }
    }

    /// Adds every score of `values`.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Merges `other` (same layout) into `self`. Merging is exact in binned
    /// mode (u64 counts add), so any deterministic merge order yields
    /// bit-identical results regardless of how the work was scheduled.
    pub fn merge(&mut self, other: ScoreAccumulator) {
        assert_eq!(
            self.config, other.config,
            "cannot merge accumulators with different layouts"
        );
        match other.state {
            State::Exact(values) => self.extend(values),
            State::Binned(other_bins) => {
                self.spill();
                let State::Binned(bins) = &mut self.state else {
                    unreachable!("spill() leaves the accumulator binned");
                };
                bins.underflow += other_bins.underflow;
                bins.overflow += other_bins.overflow;
                for (a, b) in bins.counts.iter_mut().zip(&other_bins.counts) {
                    *a += b;
                }
            }
        }
    }

    /// The largest fraction of the sample held by any single bin (including
    /// the underflow/overflow bins) — the realised `ε` of the accuracy bound
    /// in the [module docs](self). Exact mode reports 0 (no binning error);
    /// an empty accumulator reports 0.
    pub fn max_bin_fraction(&self) -> f64 {
        match &self.state {
            State::Exact(_) => 0.0,
            State::Binned(bins) => {
                let total = self.count();
                if total == 0 {
                    return 0.0;
                }
                let max = bins
                    .counts
                    .iter()
                    .copied()
                    .chain([bins.underflow, bins.overflow])
                    .max()
                    .unwrap_or(0);
                max as f64 / total as f64
            }
        }
    }

    /// Fraction of scores strictly greater than `threshold`. Exact in exact
    /// mode; in binned mode the threshold is snapped down to its bin's lower
    /// edge (error ≤ that bin's mass, counting "≥ edge" instead of
    /// "> threshold").
    pub fn exceedance_fraction(&self, threshold: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        match &self.state {
            State::Exact(v) => percentile::exceedance_fraction(v, threshold),
            State::Binned(bins) => {
                let above = if threshold < 0.0 {
                    total
                } else if threshold >= self.config.vmax {
                    bins.overflow
                } else {
                    let from = self.config.bin_of(threshold);
                    bins.counts[from..].iter().sum::<u64>() + bins.overflow
                };
                above as f64 / total as f64
            }
        }
    }

    /// The `q`-quantile. Exact (type-7 interpolation) in exact mode; in
    /// binned mode the upper edge of the bin where the cumulative count
    /// reaches `q · total` (value error ≤ one bin, see the module docs).
    /// `None` for an empty accumulator.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile fraction in [0, 1]");
        let total = self.count();
        if total == 0 {
            return None;
        }
        match &self.state {
            State::Exact(v) => percentile::quantile(v, q),
            State::Binned(bins) => {
                let target = (q * total as f64).ceil().max(1.0) as u64;
                let mut acc = bins.underflow;
                if acc >= target {
                    return Some(0.0);
                }
                for (i, &c) in bins.counts.iter().enumerate() {
                    acc += c;
                    if acc >= target {
                        return Some(self.config.edge(i + 1));
                    }
                }
                Some(self.config.vmax)
            }
        }
    }

    /// Cumulative counts *at or above* each threshold of the shared
    /// threshold ladder: entry `i ∈ 0..=bins` is the number of scores
    /// `≥ edge(i)` (entry `bins` counts only the overflow), preceded by a
    /// sentinel counting everything. Used by the streaming ROC/KS queries.
    fn ladder_counts(&self) -> Vec<u64> {
        let State::Binned(bins) = &self.state else {
            panic!("ladder_counts needs binned state");
        };
        // Suffix sums: above[i] = overflow + sum(counts[i..]).
        let mut above = vec![0u64; self.config.bins + 1];
        above[self.config.bins] = bins.overflow;
        for i in (0..self.config.bins).rev() {
            above[i] = above[i + 1] + bins.counts[i];
        }
        above
    }
}

/// The ROC curve of a clean/attacked accumulator pair (same layout, larger
/// score = more anomalous). Falls back to the exact sort-based
/// [`RocCurve::from_scores`] while both sides are exact; otherwise sweeps
/// the shared bin-edge threshold ladder (see the [module docs](self) for the
/// resulting accuracy bound). Both accumulators must be non-empty.
pub fn streaming_roc(clean: &ScoreAccumulator, attacked: &ScoreAccumulator) -> RocCurve {
    assert_eq!(
        clean.config(),
        attacked.config(),
        "clean/attacked accumulators must share a layout"
    );
    assert!(clean.count() > 0, "need at least one clean score");
    assert!(attacked.count() > 0, "need at least one attacked score");
    if let (Some(c), Some(a)) = (clean.exact_scores(), attacked.exact_scores()) {
        return RocCurve::from_scores(c, a);
    }
    // Force both onto the shared bin layout.
    let (clean, attacked) = (force_binned(clean), force_binned(attacked));
    let (n_c, n_a) = (clean.count() as f64, attacked.count() as f64);
    let (above_c, above_a) = (clean.ladder_counts(), attacked.ladder_counts());
    let config = clean.config();

    let mut points = Vec::with_capacity(config.bins + 3);
    // Below every score (underflow included): everything alarms.
    points.push(RocPoint {
        threshold: -1.0,
        false_positive_rate: 1.0,
        detection_rate: 1.0,
    });
    for i in 0..=config.bins {
        points.push(RocPoint {
            // "alarm when score ≥ edge(i)" — an exactly achievable
            // operating point (equivalent to `> edge(i) − ε`).
            threshold: config.edge(i),
            false_positive_rate: above_c[i] as f64 / n_c,
            detection_rate: above_a[i] as f64 / n_a,
        });
    }
    // Above every score: nothing alarms.
    points.push(RocPoint {
        threshold: f64::INFINITY,
        false_positive_rate: 0.0,
        detection_rate: 0.0,
    });
    RocCurve::from_points(points)
}

/// The Kolmogorov–Smirnov distance between two accumulated distributions:
/// exact while both sides are exact, otherwise the maximum CDF difference
/// over the shared bin-edge ladder (error ≤ the larger per-bin mass).
pub fn streaming_ks(a: &ScoreAccumulator, b: &ScoreAccumulator) -> f64 {
    assert_eq!(a.config(), b.config(), "accumulators must share a layout");
    if a.count() == 0 || b.count() == 0 {
        return 0.0;
    }
    if let (Some(xa), Some(xb)) = (a.exact_scores(), b.exact_scores()) {
        return ks_statistic(xa, xb);
    }
    let (a, b) = (force_binned(a), force_binned(b));
    let (n_a, n_b) = (a.count() as f64, b.count() as f64);
    let (above_a, above_b) = (a.ladder_counts(), b.ladder_counts());
    above_a
        .iter()
        .zip(&above_b)
        .map(|(&ca, &cb)| (ca as f64 / n_a - cb as f64 / n_b).abs())
        .fold(0.0, f64::max)
}

/// A binned copy (no-op clone when already binned).
fn force_binned(acc: &ScoreAccumulator) -> ScoreAccumulator {
    let mut out = acc.clone();
    out.spill();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn forced_binned_config() -> AccumulatorConfig {
        AccumulatorConfig {
            exact_limit: 0,
            ..AccumulatorConfig::default()
        }
    }

    fn accumulate(config: AccumulatorConfig, values: &[f64]) -> ScoreAccumulator {
        let mut acc = ScoreAccumulator::new(config);
        acc.extend(values.iter().copied());
        acc
    }

    #[test]
    fn exact_mode_matches_the_sort_based_roc_bit_for_bit() {
        let clean: Vec<f64> = (0..200).map(|i| (i % 37) as f64).collect();
        let attacked: Vec<f64> = (0..150).map(|i| (i % 53) as f64 + 5.0).collect();
        let config = AccumulatorConfig::exact();
        let roc = streaming_roc(&accumulate(config, &clean), &accumulate(config, &attacked));
        let exact = RocCurve::from_scores(&clean, &attacked);
        assert_eq!(roc.points(), exact.points());
    }

    #[test]
    fn spill_preserves_counts_and_happens_at_the_limit() {
        let config = AccumulatorConfig {
            exact_limit: 10,
            ..AccumulatorConfig::default()
        };
        let mut acc = ScoreAccumulator::new(config);
        acc.extend((0..10).map(|i| i as f64));
        assert!(acc.is_exact());
        acc.add(10.0);
        assert!(!acc.is_exact());
        assert_eq!(acc.count(), 11);
        assert!(acc.exact_scores().is_none());
    }

    #[test]
    fn merge_order_and_grouping_do_not_change_binned_state() {
        let values: Vec<f64> = (0..500).map(|i| (i as f64 * 0.77) % 300.0).collect();
        let config = AccumulatorConfig {
            exact_limit: 64,
            ..AccumulatorConfig::default()
        };
        // One big accumulator vs merged per-chunk accumulators (two splits).
        let whole = accumulate(config, &values);
        for chunk_size in [7usize, 100] {
            let mut merged = ScoreAccumulator::new(config);
            for chunk in values.chunks(chunk_size) {
                merged.merge(accumulate(config, chunk));
            }
            assert_eq!(force_binned(&whole), force_binned(&merged));
        }
    }

    #[test]
    fn binned_quantile_and_exceedance_are_within_one_bin() {
        let values: Vec<f64> = (0..4000).map(|i| i as f64 / 10.0).collect();
        let acc = accumulate(forced_binned_config(), &values);
        let delta = acc.config().relative_resolution();
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = percentile::quantile(&values, q).unwrap();
            let approx = acc.quantile(q).unwrap();
            assert!(
                approx + 1e-9 >= exact && approx <= (1.0 + exact) * (1.0 + delta) + 1e-9,
                "q={q}: approx {approx} vs exact {exact}"
            );
            // Exceedance at the binned quantile stays near 1 − q, off by at
            // most one bin's mass.
            let ex = acc.exceedance_fraction(approx);
            assert!(ex <= (1.0 - q) + acc.max_bin_fraction() + 1e-9);
        }
    }

    #[test]
    fn underflow_and_overflow_are_tracked() {
        let mut acc = ScoreAccumulator::new(forced_binned_config());
        acc.extend([-3.0, 0.5, 2.0, 1e9]);
        assert_eq!(acc.count(), 4);
        assert_eq!(acc.exceedance_fraction(-1.0), 1.0);
        assert_eq!(acc.exceedance_fraction(1e7), 0.25);
    }

    #[test]
    fn streaming_ks_matches_exact_ks_within_bin_mass() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let a: Vec<f64> = (0..800).map(|_| rng.gen_range(0.0..100.0)).collect();
        let b: Vec<f64> = (0..700).map(|_| rng.gen_range(20.0..140.0)).collect();
        let config = forced_binned_config();
        let (acc_a, acc_b) = (accumulate(config, &a), accumulate(config, &b));
        let stream = streaming_ks(&acc_a, &acc_b);
        let exact = ks_statistic(&a, &b);
        let eps = acc_a.max_bin_fraction().max(acc_b.max_bin_fraction());
        assert!(
            (stream - exact).abs() <= eps + 1e-9,
            "stream {stream} vs exact {exact} (eps {eps})"
        );
    }

    /// The documented bound, asserted: binned AUC within `min(ε_c, ε_a)` of
    /// the exact AUC, and binned DR-at-FP never above and at most `ε_a`
    /// below the exact value.
    fn assert_bounds(clean: &[f64], attacked: &[f64], config: AccumulatorConfig) {
        let (acc_c, acc_a) = (accumulate(config, clean), accumulate(config, attacked));
        let stream = streaming_roc(&acc_c, &acc_a);
        let exact = RocCurve::from_scores(clean, attacked);
        let (bc, ba) = (force_binned(&acc_c), force_binned(&acc_a));
        let eps_auc = bc.max_bin_fraction().min(ba.max_bin_fraction());
        let eps_dr = ba.max_bin_fraction();
        assert!(
            (stream.auc() - exact.auc()).abs() <= eps_auc + 1e-9,
            "AUC {} vs exact {} (eps {eps_auc})",
            stream.auc(),
            exact.auc()
        );
        for fp in [0.0, 0.01, 0.05, 0.1, 0.5] {
            let (dr_s, dr_e) = (
                stream.detection_rate_at_fp(fp),
                exact.detection_rate_at_fp(fp),
            );
            assert!(
                dr_s <= dr_e + 1e-9,
                "binned DR@{fp} {dr_s} overstates exact {dr_e}"
            );
            assert!(
                dr_s >= dr_e - eps_dr - 1e-9,
                "binned DR@{fp} {dr_s} below exact {dr_e} − {eps_dr}"
            );
        }
    }

    #[test]
    fn separable_distributions_keep_auc_one_when_binned() {
        let clean: Vec<f64> = (0..300).map(|i| i as f64 * 0.1).collect();
        let attacked: Vec<f64> = (0..300).map(|i| 100.0 + i as f64 * 0.1).collect();
        assert_bounds(&clean, &attacked, forced_binned_config());
        let acc_c = accumulate(forced_binned_config(), &clean);
        let acc_a = accumulate(forced_binned_config(), &attacked);
        assert!((streaming_roc(&acc_c, &acc_a).auc() - 1.0).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_streaming_roc_matches_exact_within_documented_tolerance(
            clean in proptest::collection::vec(0.0f64..400.0, 2..160),
            attacked in proptest::collection::vec(0.0f64..400.0, 2..160),
        ) {
            assert_bounds(&clean, &attacked, forced_binned_config());
        }

        #[test]
        fn prop_exact_limit_never_changes_results_beyond_the_bound(
            clean in proptest::collection::vec(0.0f64..50.0, 2..120),
            attacked in proptest::collection::vec(10.0f64..90.0, 2..120),
            limit in 0usize..64,
        ) {
            let config = AccumulatorConfig { exact_limit: limit, ..AccumulatorConfig::default() };
            assert_bounds(&clean, &attacked, config);
        }

        #[test]
        fn prop_merge_equals_bulk_accumulation(
            values in proptest::collection::vec(0.0f64..1000.0, 0..200),
            split in 0usize..200,
        ) {
            let config = AccumulatorConfig { exact_limit: 32, ..AccumulatorConfig::default() };
            let split = split.min(values.len());
            let mut merged = ScoreAccumulator::new(config);
            merged.merge(accumulate(config, &values[..split]));
            merged.merge(accumulate(config, &values[split..]));
            let whole = accumulate(config, &values);
            prop_assert_eq!(force_binned(&whole), force_binned(&merged));
            prop_assert_eq!(whole.count(), values.len() as u64);
        }
    }
}
