//! Numerically stable binomial distribution.
//!
//! The probability metric of the LAD paper (§5.4) evaluates
//! `Pr(X_i = o_i | L_e) = C(m, o_i) · g_i(L_e)^{o_i} · (1 − g_i(L_e))^{m − o_i}`
//! for group sizes up to m = 1000, so the pmf is computed in log space.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// `ln n!` is precomputed up to the paper's maximum group size (m = 1000)
/// plus headroom; the probability metric evaluates `ln C(m, k)` per group on
/// the detection hot path, so this must be a plain lookup.
pub const LN_FACTORIAL_TABLE_LEN: usize = 2048;

/// The precomputed `ln n!` table for `n < 2048`, exposed so hot loops (the
/// probability metric scans one binomial pmf per group per request) can hoist
/// the table reference out of their inner loop.
pub fn ln_factorial_table() -> &'static [f64; LN_FACTORIAL_TABLE_LEN] {
    static TABLE: std::sync::OnceLock<[f64; LN_FACTORIAL_TABLE_LEN]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0.0f64; LN_FACTORIAL_TABLE_LEN];
        let mut acc = 0.0f64;
        for (k, slot) in table.iter_mut().enumerate().skip(1) {
            acc += (k as f64).ln();
            *slot = acc;
        }
        table
    })
}

/// Natural log of `n!`, via a precomputed table for `n < 2048` and
/// Stirling's series beyond it.
pub fn ln_factorial(n: u64) -> f64 {
    if (n as usize) < LN_FACTORIAL_TABLE_LEN {
        return ln_factorial_table()[n as usize];
    }
    // Stirling's series with three correction terms (error < 1e-10 for n >= 32).
    let n = n as f64;
    n * n.ln() - n + 0.5 * (2.0 * std::f64::consts::PI * n).ln() + 1.0 / (12.0 * n)
        - 1.0 / (360.0 * n.powi(3))
        + 1.0 / (1260.0 * n.powi(5))
}

/// Natural log of the binomial coefficient `C(n, k)`; `-inf` when `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Binomial distribution `Binomial(n, p)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Binomial {
    /// Number of trials.
    pub n: u64,
    /// Success probability, clamped to `[0, 1]`.
    pub p: f64,
}

impl Binomial {
    /// Creates the distribution, clamping `p` into `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Self {
        Self {
            n,
            p: p.clamp(0.0, 1.0),
        }
    }

    /// Natural log of the pmf at `k`; `-inf` when `k > n` or the outcome is
    /// impossible (e.g. `k > 0` with `p = 0`).
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        if self.p <= 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p >= 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        if k == 0 {
            // ln Pr(X = 0) = n·ln(1 − p). This is the common case on the
            // detection hot path (a sensor observes nobody from far-away
            // groups), so avoid ln_choose entirely; for tiny p the two-term
            // series for ln(1 − p) is exact to f64 precision.
            let ln_q = if self.p < 1e-6 {
                -self.p * (1.0 + 0.5 * self.p)
            } else {
                (1.0 - self.p).ln()
            };
            return self.n as f64 * ln_q;
        }
        ln_choose(self.n, k) + k as f64 * self.p.ln() + (self.n - k) as f64 * (1.0 - self.p).ln()
    }

    /// Probability mass at `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// Cumulative probability `Pr(X ≤ k)` by direct summation.
    pub fn cdf(&self, k: u64) -> f64 {
        let k = k.min(self.n);
        let mut acc = 0.0;
        for i in 0..=k {
            acc += self.pmf(i);
        }
        acc.min(1.0)
    }

    /// The distribution mean `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// The distribution variance `n·p·(1 − p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// The mode `⌊(n + 1)p⌋` (one of the modes when the distribution is
    /// bimodal), clamped to `[0, n]`.
    ///
    /// Used by the greedy adversary against the probability metric: the mode
    /// is the observation value with the highest likelihood.
    pub fn mode(&self) -> u64 {
        if self.p >= 1.0 {
            return self.n;
        }
        (((self.n + 1) as f64 * self.p).floor() as u64).min(self.n)
    }

    /// Draws a sample by inversion for small `n·p`, otherwise by a normal
    /// approximation with continuity correction (adequate for simulation use).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 0 || self.p <= 0.0 {
            return 0;
        }
        if self.p >= 1.0 {
            return self.n;
        }
        if self.n <= 64 {
            // Direct Bernoulli summation: exact and fast for small n.
            let mut k = 0;
            for _ in 0..self.n {
                if rng.gen::<f64>() < self.p {
                    k += 1;
                }
            }
            return k;
        }
        // Normal approximation with continuity correction, clamped to support.
        let mean = self.mean();
        let sd = self.variance().sqrt();
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        ((mean + sd * z + 0.5).floor().max(0.0) as u64).min(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ln_factorial_small_values_exact() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(10) - 3628800f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_factorial_stirling_accuracy() {
        // 50! known value of ln(50!) ≈ 148.47776695177302
        assert!((ln_factorial(50) - 148.47776695177302).abs() < 1e-8);
        // Consistency across the table/Stirling boundary: ln(n!) - ln((n-1)!) = ln n.
        for n in 30u64..40 {
            assert!((ln_factorial(n) - ln_factorial(n - 1) - (n as f64).ln()).abs() < 1e-8);
        }
    }

    #[test]
    fn ln_choose_matches_pascal() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-10);
        assert!((ln_choose(10, 5) - 252f64.ln()).abs() < 1e-10);
        assert_eq!(ln_choose(3, 7), f64::NEG_INFINITY);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (100, 0.05), (300, 0.5), (1000, 0.01)] {
            let b = Binomial::new(n, p);
            let total: f64 = (0..=n).map(|k| b.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn degenerate_probabilities() {
        let zero = Binomial::new(10, 0.0);
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(zero.pmf(1), 0.0);
        let one = Binomial::new(10, 1.0);
        assert_eq!(one.pmf(10), 1.0);
        assert_eq!(one.pmf(3), 0.0);
        assert_eq!(one.mode(), 10);
    }

    #[test]
    fn mode_has_maximal_pmf() {
        for &(n, p) in &[(17u64, 0.23), (300, 0.04), (1000, 0.31)] {
            let b = Binomial::new(n, p);
            let mode = b.mode();
            let pm = b.pmf(mode);
            for k in 0..=n {
                assert!(b.pmf(k) <= pm + 1e-12, "n={n} p={p} k={k}");
            }
        }
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let b = Binomial::new(40, 0.37);
        let mut prev = 0.0;
        for k in 0..=40 {
            let c = b.cdf(k);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!((b.cdf(40) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_mean_matches_theory() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for &(n, p) in &[(30u64, 0.2), (300, 0.05)] {
            let b = Binomial::new(n, p);
            let trials = 20_000;
            let mean: f64 =
                (0..trials).map(|_| b.sample(&mut rng) as f64).sum::<f64>() / trials as f64;
            assert!(
                (mean - b.mean()).abs() < 0.15 * b.mean().max(1.0),
                "n={n} p={p} mean={mean}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_pmf_in_unit_interval(n in 1u64..500, p in 0.0f64..1.0, k in 0u64..500) {
            let b = Binomial::new(n, p);
            let v = b.pmf(k);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        }

        #[test]
        fn prop_mode_within_support(n in 1u64..1000, p in 0.0f64..1.0) {
            let b = Binomial::new(n, p);
            prop_assert!(b.mode() <= n);
        }

        #[test]
        fn prop_samples_within_support(n in 1u64..400, p in 0.0f64..1.0, seed in 0u64..100) {
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let b = Binomial::new(n, p);
            for _ in 0..16 {
                prop_assert!(b.sample(&mut rng) <= n);
            }
        }
    }
}
