//! Precomputed lookup tables with linear interpolation.
//!
//! §3.3 of the paper: "we precompute g(z) and store the values in a table …
//! we divide the range of z into ω equal-size sub-ranges, and store the g(z)
//! values for these ω+1 dividing points into a table … then it uses the
//! interpolation to compute g(z₀). The computation takes only constant time."
//!
//! [`LookupTable`] is that table, generic over the tabulated function.

use serde::{Deserialize, Serialize};

/// A uniformly spaced 1-D lookup table over `[min, max]` with `omega`
/// sub-ranges (`omega + 1` stored samples) and linear interpolation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LookupTable {
    min: f64,
    max: f64,
    values: Vec<f64>,
}

impl LookupTable {
    /// Builds a table by sampling `f` at the `omega + 1` dividing points of
    /// `[min, max]`.
    pub fn build<F: FnMut(f64) -> f64>(min: f64, max: f64, omega: usize, mut f: F) -> Self {
        assert!(max > min, "lookup range must be non-empty");
        assert!(omega >= 1, "need at least one sub-range");
        let step = (max - min) / omega as f64;
        let values = (0..=omega).map(|i| f(min + i as f64 * step)).collect();
        Self { min, max, values }
    }

    /// Constructs a table directly from precomputed `values` over `[min, max]`.
    pub fn from_values(min: f64, max: f64, values: Vec<f64>) -> Self {
        assert!(max > min, "lookup range must be non-empty");
        assert!(values.len() >= 2, "need at least two samples");
        Self { min, max, values }
    }

    /// Number of sub-ranges ω.
    pub fn omega(&self) -> usize {
        self.values.len() - 1
    }

    /// Lower bound of the tabulated domain.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound of the tabulated domain.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Evaluates the table at `x` with linear interpolation. Arguments outside
    /// `[min, max]` are clamped to the nearest endpoint value.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.prepared().eval(x)
    }

    /// A borrowed evaluator with the loop-invariant parts (range span, ω,
    /// value count) hoisted out, for hot loops that evaluate the same table
    /// many times. Produces bit-identical results to [`Self::eval`] — the
    /// interpolation arithmetic is unchanged, only recomputed invariants
    /// are cached.
    #[inline]
    pub fn prepared(&self) -> PreparedLookup<'_> {
        PreparedLookup {
            min: self.min,
            max: self.max,
            span: self.max - self.min,
            omega: (self.values.len() - 1) as f64,
            last: self.values.len() - 1,
            values: &self.values,
        }
    }

    /// Maximum absolute interpolation error against `f` measured on a probe
    /// grid `probes`-times finer than the table (useful for the ω ablation).
    pub fn max_error_against<F: Fn(f64) -> f64>(&self, f: F, probes_per_cell: usize) -> f64 {
        let n = self.omega() * probes_per_cell.max(1);
        let mut worst = 0.0f64;
        for i in 0..=n {
            let x = self.min + (self.max - self.min) * i as f64 / n as f64;
            worst = worst.max((self.eval(x) - f(x)).abs());
        }
        worst
    }
}

/// The hoisted-invariant evaluator returned by [`LookupTable::prepared`].
#[derive(Debug, Clone, Copy)]
pub struct PreparedLookup<'a> {
    min: f64,
    max: f64,
    span: f64,
    omega: f64,
    last: usize,
    values: &'a [f64],
}

impl PreparedLookup<'_> {
    /// Linear interpolation at `x`, clamped to the endpoint values outside
    /// `[min, max]`. Bit-identical to [`LookupTable::eval`].
    #[inline(always)]
    pub fn eval(&self, x: f64) -> f64 {
        if x <= self.min {
            return self.values[0];
        }
        if x >= self.max {
            return self.values[self.last];
        }
        // `t ∈ [0, ω]`, so the truncating cast equals the old
        // `t.floor() as usize` and both indices stay in bounds.
        let t = (x - self.min) / self.span * self.omega;
        let lo = t as usize;
        let hi = (lo + 1).min(self.last);
        let frac = t - lo as f64;
        self.values[lo] * (1.0 - frac) + self.values[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_at_sample_points() {
        let t = LookupTable::build(0.0, 10.0, 10, |x| x * x);
        for i in 0..=10 {
            let x = i as f64;
            assert!((t.eval(x) - x * x).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_functions_are_reproduced_exactly() {
        let t = LookupTable::build(-5.0, 5.0, 7, |x| 3.0 * x - 2.0);
        for i in 0..100 {
            let x = -5.0 + 10.0 * i as f64 / 99.0;
            assert!((t.eval(x) - (3.0 * x - 2.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn clamps_out_of_range_arguments() {
        let t = LookupTable::build(0.0, 1.0, 4, |x| x);
        assert_eq!(t.eval(-3.0), 0.0);
        assert_eq!(t.eval(7.0), 1.0);
    }

    #[test]
    fn error_shrinks_as_omega_grows() {
        let f = |x: f64| (x / 40.0).sin();
        let coarse = LookupTable::build(0.0, 400.0, 16, f);
        let fine = LookupTable::build(0.0, 400.0, 256, f);
        let e_coarse = coarse.max_error_against(f, 8);
        let e_fine = fine.max_error_against(f, 8);
        assert!(e_fine < e_coarse);
        assert!(e_fine < 1e-3);
    }

    #[test]
    fn from_values_round_trip() {
        let t = LookupTable::from_values(0.0, 2.0, vec![1.0, 3.0, 5.0]);
        assert_eq!(t.omega(), 2);
        assert_eq!(t.eval(0.0), 1.0);
        assert_eq!(t.eval(1.0), 3.0);
        assert_eq!(t.eval(1.5), 4.0);
        assert_eq!(t.min(), 0.0);
        assert_eq!(t.max(), 2.0);
    }

    proptest! {
        #[test]
        fn prop_interpolation_between_neighbouring_samples(
            omega in 2usize..64,
            x in 0.0f64..100.0,
        ) {
            // For a monotone function the interpolated value must stay within
            // the two neighbouring samples.
            let f = |v: f64| v.sqrt();
            let t = LookupTable::build(0.0, 100.0, omega, f);
            let v = t.eval(x);
            let step = 100.0 / omega as f64;
            let lo = (x / step).floor() * step;
            let hi = (lo + step).min(100.0);
            prop_assert!(v >= f(lo) - 1e-9 && v <= f(hi) + 1e-9);
        }
    }
}
