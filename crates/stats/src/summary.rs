//! Summary statistics: batch summaries and Welford online accumulation.

use serde::{Deserialize, Serialize};

/// Batch summary of a sample: count, mean, variance, extremes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean (0 for an empty sample).
    pub mean: f64,
    /// Unbiased sample variance (0 when count < 2).
    pub variance: f64,
    /// Minimum observation (+inf for an empty sample).
    pub min: f64,
    /// Maximum observation (-inf for an empty sample).
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `values`.
    pub fn of(values: &[f64]) -> Self {
        let mut acc = OnlineStats::new();
        for &v in values {
            acc.push(v);
        }
        acc.summary()
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// A normal-approximation 95 % confidence interval for the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error();
        (self.mean - half, self.mean + half)
    }
}

/// Welford's online mean/variance accumulator — numerically stable and
/// single-pass, suitable for streaming millions of Monte-Carlo trial results.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another accumulator into this one (parallel reduction step).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = (self.count + other.count) as f64;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total;
        self.mean = new_mean;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Current mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Snapshot as a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            variance: self.variance(),
            min: self.min,
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic sample is 32/7.
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn empty_sample_is_well_defined() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn ci95_contains_mean() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let (lo, hi) = s.ci95();
        assert!(lo <= s.mean && s.mean <= hi);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &v in &data {
            whole.push(v);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &v in &data[..300] {
            left.push(v);
        }
        for &v in &data[300..] {
            right.push(v);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.summary();
        a.merge(&OnlineStats::new());
        assert_eq!(a.summary(), before);
        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.summary(), before);
    }

    proptest! {
        #[test]
        fn prop_online_matches_batch(values in proptest::collection::vec(-1e3f64..1e3, 0..200)) {
            let batch = Summary::of(&values);
            let mut online = OnlineStats::new();
            for &v in &values {
                online.push(v);
            }
            let s = online.summary();
            prop_assert_eq!(s.count, batch.count);
            prop_assert!((s.mean - batch.mean).abs() < 1e-9);
            prop_assert!((s.variance - batch.variance).abs() < 1e-6);
        }

        #[test]
        fn prop_merge_order_independent(
            a in proptest::collection::vec(-1e3f64..1e3, 1..100),
            b in proptest::collection::vec(-1e3f64..1e3, 1..100),
        ) {
            let mut ab = OnlineStats::new();
            let mut ba = OnlineStats::new();
            let (mut sa, mut sb) = (OnlineStats::new(), OnlineStats::new());
            for &v in &a { sa.push(v); }
            for &v in &b { sb.push(v); }
            ab.merge(&sa); ab.merge(&sb);
            ba.merge(&sb); ba.merge(&sa);
            prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
            prop_assert!((ab.variance() - ba.variance()).abs() < 1e-6);
        }
    }
}
