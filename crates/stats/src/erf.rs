//! Error function and standard normal CDF.
//!
//! `std` does not expose `erf`, so we implement the Abramowitz & Stegun
//! 7.1.26 rational approximation (max absolute error ≈ 1.5 × 10⁻⁷), which is
//! far below the Monte-Carlo noise floor of the experiments in this
//! workspace.

/// Error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26.
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal cumulative distribution function `Φ(z)`.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal probability density function `φ(z)`.
pub fn std_normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn erf_known_values() {
        // Reference values from standard tables.
        // The A&S 7.1.26 approximation has ~1.5e-7 absolute error, including at 0.
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(0.5) - 0.5204999).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427008).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953223).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427008).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((std_normal_cdf(1.0) - 0.8413447).abs() < 1e-5);
        assert!((std_normal_cdf(-1.96) - 0.0249979).abs() < 1e-4);
        assert!(std_normal_cdf(8.0) > 0.999999);
        assert!(std_normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn pdf_is_symmetric_and_peaks_at_zero() {
        assert!((std_normal_pdf(0.0) - 0.3989423).abs() < 1e-6);
        assert!((std_normal_pdf(1.3) - std_normal_pdf(-1.3)).abs() < 1e-12);
        assert!(std_normal_pdf(0.0) > std_normal_pdf(0.1));
    }

    proptest! {
        #[test]
        fn prop_erf_odd_and_bounded(x in -6.0f64..6.0) {
            prop_assert!((erf(x) + erf(-x)).abs() < 1e-7);
            prop_assert!(erf(x).abs() <= 1.0 + 1e-12);
        }

        #[test]
        fn prop_cdf_monotone(a in -6.0f64..6.0, b in -6.0f64..6.0) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(std_normal_cdf(lo) <= std_normal_cdf(hi) + 1e-9);
        }

        #[test]
        fn prop_erfc_complements(x in -6.0f64..6.0) {
            prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }
}
