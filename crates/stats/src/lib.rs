//! Statistics substrate for the LAD reproduction.
//!
//! The LAD paper leans on a handful of numerical and statistical tools:
//!
//! * the Theorem-1 integral for `g(z)` needs a **quadrature** routine
//!   ([`integrate`]) and a constant-time **lookup table** ([`lookup`]),
//! * the probability metric needs a numerically stable **binomial pmf**
//!   ([`binomial`]),
//! * the deployment model is a 2-D isotropic **Gaussian**, whose radial
//!   distance is **Rayleigh** ([`gaussian`], [`rayleigh`], [`erf`]),
//! * threshold training uses **percentiles** ([`percentile`]) over sampled
//!   metric values ([`histogram`], [`summary`]),
//! * the evaluation section is built around **ROC curves** ([`roc`]) and
//!   their O(bins)-memory **streaming accumulators** ([`streaming`]),
//! * the online serving runtime needs **sequential detectors** over
//!   per-round score streams ([`sequential`]),
//! * reproducible parallel Monte-Carlo needs **seed derivation** ([`seeds`]).
//!
//! Everything is implemented from scratch on top of `std` + `rand`, so the
//! workspace does not pull in a numerics stack.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod binomial;
pub mod erf;
pub mod gaussian;
pub mod histogram;
pub mod integrate;
pub mod ks;
pub mod lookup;
pub mod percentile;
pub mod rayleigh;
pub mod roc;
pub mod seeds;
pub mod sequential;
pub mod streaming;
pub mod summary;

pub use binomial::Binomial;
pub use gaussian::{Gaussian1d, IsotropicGaussian2d};
pub use histogram::Histogram;
pub use lookup::{LookupTable, PreparedLookup};
pub use rayleigh::Rayleigh;
pub use roc::{RocCurve, RocPoint};
pub use sequential::{SequentialDetector, SequentialState};
pub use streaming::{streaming_ks, streaming_roc, AccumulatorConfig, ScoreAccumulator};
pub use summary::{OnlineStats, Summary};
