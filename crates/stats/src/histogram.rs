//! Fixed-bin histograms for metric-score distributions.

use serde::{Deserialize, Serialize};

/// A histogram over `[min, max)` with equally sized bins; values outside the
/// range are counted in saturating edge bins (underflow / overflow).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` bins over `[min, max)`.
    pub fn new(min: f64, max: f64, bins: usize) -> Self {
        assert!(max > min, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            min,
            max,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Number of interior bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.max - self.min) / self.counts.len() as f64
    }

    /// Adds a single observation.
    pub fn add(&mut self, value: f64) {
        self.total += 1;
        if value < self.min {
            self.underflow += 1;
        } else if value >= self.max {
            self.overflow += 1;
        } else {
            let idx = ((value - self.min) / self.bin_width()) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Adds every value in `values`.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Total number of observations (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in interior bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Counts below `min` / at-or-above `max`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Lower edge of bin `i`.
    pub fn bin_lower(&self, i: usize) -> f64 {
        self.min + i as f64 * self.bin_width()
    }

    /// The centre of each bin alongside its normalised frequency
    /// (counts / total); empty histogram yields all-zero frequencies.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let denom = self.total.max(1) as f64;
        (0..self.counts.len())
            .map(|i| {
                (
                    self.bin_lower(i) + 0.5 * self.bin_width(),
                    self.counts[i] as f64 / denom,
                )
            })
            .collect()
    }

    /// Approximate quantile from the binned data (returns the upper edge of
    /// the bin where the cumulative count first reaches `q · total`).
    pub fn approximate_quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        assert!((0.0..=1.0).contains(&q));
        let target = (q * self.total as f64).ceil() as u64;
        let mut acc = self.underflow;
        if acc >= target {
            return Some(self.min);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(self.bin_lower(i) + self.bin_width());
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counts_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend([0.5, 1.5, 1.9, 9.99]);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_values_are_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend([-1.0, 2.0, 0.5, 1.0]); // 1.0 is >= max -> overflow
        let (under, over) = h.out_of_range();
        assert_eq!(under, 1);
        assert_eq!(over, 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn normalized_frequencies_sum_to_inrange_fraction() {
        let mut h = Histogram::new(0.0, 100.0, 20);
        h.extend((0..1000).map(|i| i as f64 / 10.0));
        let sum: f64 = h.normalized().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn approximate_quantile_brackets_true_quantile() {
        let mut h = Histogram::new(0.0, 1000.0, 100);
        h.extend((0..10_000).map(|i| i as f64 / 10.0));
        let q90 = h.approximate_quantile(0.9).unwrap();
        assert!((q90 - 900.0).abs() <= 10.0 + 1e-9);
        assert!(Histogram::new(0.0, 1.0, 2)
            .approximate_quantile(0.5)
            .is_none());
    }

    proptest! {
        #[test]
        fn prop_total_matches_inserted(values in proptest::collection::vec(-50.0f64..150.0, 0..300)) {
            let mut h = Histogram::new(0.0, 100.0, 13);
            h.extend(values.iter().copied());
            let (under, over) = h.out_of_range();
            let in_range: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
            prop_assert_eq!(h.total(), values.len() as u64);
            prop_assert_eq!(in_range + under + over, values.len() as u64);
        }
    }
}
