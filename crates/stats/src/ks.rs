//! Two-sample Kolmogorov–Smirnov distance.
//!
//! Used by the deployment-model-mismatch ablation (paper §8 future work) to
//! quantify how far the clean metric-score distribution drifts when the real
//! deployment no longer matches the knowledge the detector was trained with.

/// The two-sample Kolmogorov–Smirnov statistic: the maximum absolute
/// difference between the empirical CDFs of `a` and `b`.
///
/// Returns 0 when either sample is empty.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut sa: Vec<f64> = a.to_vec();
    let mut sb: Vec<f64> = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS input"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS input"));

    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut d = 0.0f64;
    while ia < sa.len() && ib < sb.len() {
        let va = sa[ia];
        let vb = sb[ib];
        if va <= vb {
            ia += 1;
        }
        if vb <= va {
            ib += 1;
        }
        d = d.max((ia as f64 / na - ib as f64 / nb).abs());
    }
    d.min(1.0)
}

/// An asymptotic p-value for the two-sample KS statistic (Kolmogorov
/// distribution approximation). Small p-values indicate the samples come from
/// different distributions. Accuracy is adequate for the sample sizes used in
/// the harness (hundreds of points); it is not meant for small-sample exact
/// inference.
pub fn ks_p_value(statistic: f64, n_a: usize, n_b: usize) -> f64 {
    if n_a == 0 || n_b == 0 {
        return 1.0;
    }
    let n_eff = (n_a as f64 * n_b as f64) / (n_a as f64 + n_b as f64);
    let lambda = (n_eff.sqrt() + 0.12 + 0.11 / n_eff.sqrt()) * statistic;
    if lambda < 1e-3 {
        // The alternating series does not converge numerically at lambda ≈ 0;
        // the limit of the survival function there is 1.
        return 1.0;
    }
    // Q_KS(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2)
    let mut sum = 0.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += if j % 2 == 1 { term } else { -term };
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_samples_have_zero_distance() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(ks_statistic(&a, &a), 0.0);
        assert!(ks_p_value(0.0, 100, 100) > 0.99);
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (100..150).map(|i| i as f64).collect();
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
        assert!(ks_p_value(1.0, 50, 50) < 1e-6);
    }

    #[test]
    fn shifted_distributions_have_intermediate_distance() {
        let a: Vec<f64> = (0..200).map(|i| i as f64 / 10.0).collect();
        let b: Vec<f64> = (0..200).map(|i| i as f64 / 10.0 + 5.0).collect();
        let d = ks_statistic(&a, &b);
        assert!(d > 0.2 && d < 0.5, "d = {d}");
        assert!(ks_p_value(d, 200, 200) < 0.01);
    }

    #[test]
    fn empty_samples_are_neutral() {
        assert_eq!(ks_statistic(&[], &[1.0]), 0.0);
        assert_eq!(ks_statistic(&[1.0], &[]), 0.0);
        assert_eq!(ks_p_value(0.5, 0, 10), 1.0);
    }

    proptest! {
        #[test]
        fn prop_ks_is_symmetric_and_bounded(
            a in proptest::collection::vec(-1e3f64..1e3, 1..100),
            b in proptest::collection::vec(-1e3f64..1e3, 1..100),
        ) {
            let d1 = ks_statistic(&a, &b);
            let d2 = ks_statistic(&b, &a);
            prop_assert!((d1 - d2).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&d1));
        }

        #[test]
        fn prop_p_value_decreases_with_statistic(n in 10usize..500) {
            let p_small = ks_p_value(0.05, n, n);
            let p_large = ks_p_value(0.5, n, n);
            prop_assert!(p_large <= p_small + 1e-12);
        }
    }
}
