//! Deterministic sub-seed derivation for parallel Monte-Carlo.
//!
//! Every trial of the evaluation harness derives its own RNG seed from a
//! master seed plus structured indices (experiment id, parameter index, trial
//! index). This keeps results bit-identical regardless of how Rayon schedules
//! the trials across threads, which is the reproducibility idiom recommended
//! for parallel simulation codes.

/// SplitMix64 — a small, well-mixed 64-bit finalizer used to derive seeds.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a master seed and a sequence of indices.
///
/// The derivation is a chained SplitMix64 over the master seed and each
/// index, so `derive_seed(s, &[a, b])` differs from `derive_seed(s, &[b, a])`
/// and from `derive_seed(s, &[a])`.
pub fn derive_seed(master: u64, indices: &[u64]) -> u64 {
    let mut state = splitmix64(master ^ 0xA076_1D64_78BD_642F);
    for (level, &idx) in indices.iter().enumerate() {
        state = splitmix64(state ^ splitmix64(idx.wrapping_add(level as u64 + 1)));
    }
    state
}

/// A seeded partial Fisher–Yates shuffle of `0..n`: after the call, the
/// first `prefix` positions are an unbiased uniform sample-without-
/// replacement ordering (ChaCha8 stream seeded by `seed`, one
/// `gen_range(i..n)` draw per prefix position).
///
/// This is the shared primitive behind the evaluation harness's
/// sample-without-replacement node sampling (`prefix = count`, then
/// truncate) and the serving traffic model's compromise-rank assignment
/// (`prefix = n - 1`, a full shuffle) — one implementation, so the two
/// cannot drift apart.
pub fn seeded_partial_shuffle(n: usize, prefix: usize, seed: u64) -> Vec<u32> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut pool: Vec<u32> = (0..n as u32).collect();
    for i in 0..prefix.min(n) {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool
}

/// A small helper bundling a master seed, offering ergonomic derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `master`.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the seed for the given index path.
    pub fn seed_for(&self, indices: &[u64]) -> u64 {
        derive_seed(self.master, indices)
    }

    /// A child sequence rooted at the derived seed for `index`.
    pub fn child(&self, index: u64) -> SeedSequence {
        SeedSequence {
            master: self.seed_for(&[index]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn derive_seed_depends_on_order_and_depth() {
        let m = 12345;
        assert_ne!(derive_seed(m, &[1, 2]), derive_seed(m, &[2, 1]));
        assert_ne!(derive_seed(m, &[1]), derive_seed(m, &[1, 0]));
        assert_ne!(derive_seed(m, &[]), derive_seed(m, &[0]));
        assert_eq!(derive_seed(m, &[7, 8, 9]), derive_seed(m, &[7, 8, 9]));
    }

    #[test]
    fn different_masters_give_different_streams() {
        assert_ne!(derive_seed(1, &[0]), derive_seed(2, &[0]));
    }

    #[test]
    fn seeds_are_wellspread() {
        // No collisions across a realistic experiment-sized index grid.
        let seq = SeedSequence::new(42);
        let mut seen = HashSet::new();
        for exp in 0..10u64 {
            for param in 0..20u64 {
                for trial in 0..50u64 {
                    assert!(seen.insert(seq.seed_for(&[exp, param, trial])));
                }
            }
        }
        assert_eq!(seen.len(), 10 * 20 * 50);
    }

    #[test]
    fn child_sequences_compose() {
        let root = SeedSequence::new(7);
        let child = root.child(3);
        assert_eq!(child.master(), root.seed_for(&[3]));
        assert_ne!(child.seed_for(&[1]), root.seed_for(&[1]));
        assert_eq!(root.master(), 7);
    }
}
