//! Numerical quadrature: composite Simpson and adaptive Simpson rules.
//!
//! Used to evaluate the Theorem-1 integral of the paper when building the
//! `g(z)` lookup table, and in tests to validate densities.

/// Composite Simpson's rule over `[a, b]` with `n` subintervals
/// (`n` is rounded up to the next even number; `n = 0` returns 0).
pub fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    if n == 0 || a == b {
        return 0.0;
    }
    let n = if n.is_multiple_of(2) { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let x = a + i as f64 * h;
        sum += if i % 2 == 0 { 2.0 * f(x) } else { 4.0 * f(x) };
    }
    sum * h / 3.0
}

/// Adaptive Simpson quadrature over `[a, b]` with absolute tolerance `tol`.
///
/// Recursion depth is bounded by `max_depth`; when the bound is hit the
/// current best estimate is returned (the integrands in this workspace are
/// smooth, so this is a safety valve rather than an expected path).
pub fn adaptive_simpson<F: Fn(f64) -> f64 + Copy>(
    f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_depth: usize,
) -> f64 {
    if a == b {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson_segment(a, b, fa, fm, fb);
    adaptive_rec(f, a, b, fa, fm, fb, whole, tol, max_depth)
}

fn simpson_segment(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive_rec<F: Fn(f64) -> f64 + Copy>(
    f: F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: usize,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson_segment(a, m, fa, flm, fm);
    let right = simpson_segment(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        adaptive_rec(f, a, m, fa, flm, fm, left, tol * 0.5, depth - 1)
            + adaptive_rec(f, m, b, fm, frm, fb, right, tol * 0.5, depth - 1)
    }
}

/// Trapezoidal rule over `[a, b]` with `n` subintervals.
pub fn trapezoid<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    if n == 0 || a == b {
        return 0.0;
    }
    let h = (b - a) / n as f64;
    let mut sum = 0.5 * (f(a) + f(b));
    for i in 1..n {
        sum += f(a + i as f64 * h);
    }
    sum * h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn simpson_polynomials_exact() {
        // Simpson is exact for cubics.
        let f = |x: f64| 3.0 * x * x * x - 2.0 * x * x + x - 7.0;
        let exact = |x: f64| 0.75 * x.powi(4) - 2.0 / 3.0 * x.powi(3) + 0.5 * x * x - 7.0 * x;
        let got = simpson(f, -1.0, 3.0, 2);
        assert!((got - (exact(3.0) - exact(-1.0))).abs() < 1e-9);
    }

    #[test]
    fn simpson_sine_quarter_period() {
        let got = simpson(|x| x.sin(), 0.0, PI, 512);
        assert!((got - 2.0).abs() < 1e-8);
    }

    #[test]
    fn adaptive_matches_fixed_on_smooth_function() {
        let f = |x: f64| (-x * x / 2.0).exp();
        let fixed = simpson(f, -8.0, 8.0, 1 << 14);
        let adaptive = adaptive_simpson(f, -8.0, 8.0, 1e-10, 30);
        assert!((fixed - adaptive).abs() < 1e-8);
        assert!((adaptive - (2.0 * PI).sqrt()).abs() < 1e-7);
    }

    #[test]
    fn odd_n_is_rounded_up_and_zero_width_is_zero() {
        let f = |x: f64| x;
        assert!((simpson(f, 0.0, 2.0, 3) - 2.0).abs() < 1e-12);
        assert_eq!(simpson(f, 1.0, 1.0, 100), 0.0);
        assert_eq!(trapezoid(f, 1.0, 1.0, 100), 0.0);
        assert_eq!(simpson(f, 0.0, 1.0, 0), 0.0);
    }

    #[test]
    fn trapezoid_converges() {
        let got = trapezoid(|x| x * x, 0.0, 1.0, 10_000);
        assert!((got - 1.0 / 3.0).abs() < 1e-7);
    }

    proptest! {
        #[test]
        fn prop_adaptive_linear_exact(a in -10.0f64..10.0, b in -10.0f64..10.0, m in -5.0f64..5.0, c in -5.0f64..5.0) {
            let f = move |x: f64| m * x + c;
            let exact = m * (b * b - a * a) / 2.0 + c * (b - a);
            let got = adaptive_simpson(f, a, b, 1e-12, 20);
            prop_assert!((got - exact).abs() < 1e-7);
        }

        #[test]
        fn prop_simpson_reversal_negates(a in -5.0f64..5.0, b in -5.0f64..5.0) {
            let f = |x: f64| (x * 1.3).cos() + x * x;
            let fwd = simpson(f, a, b, 256);
            let bwd = simpson(f, b, a, 256);
            prop_assert!((fwd + bwd).abs() < 1e-9);
        }
    }
}
