//! One- and two-dimensional Gaussian distributions.
//!
//! The LAD deployment model (§3.2 of the paper) places every sensor of group
//! `G_i` at a resident point drawn from an isotropic 2-D Gaussian centred at
//! the group's deployment point with per-axis standard deviation σ.

use crate::erf::std_normal_cdf;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A one-dimensional Gaussian (normal) distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian1d {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (> 0).
    pub sigma: f64,
}

impl Gaussian1d {
    /// Creates a Gaussian; panics when `sigma` is not strictly positive.
    pub fn new(mean: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        Self { mean, sigma }
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mean) / self.sigma)
    }

    /// Draws a sample (Box–Muller, single value).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.sigma * z
    }
}

/// An isotropic 2-D Gaussian: independent x/y components with the same σ.
///
/// This is exactly the deployment pdf of the paper:
/// `f(x, y) = 1/(2πσ²) · exp(−(x² + y²)/(2σ²))` around the deployment point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsotropicGaussian2d {
    /// Mean x coordinate (deployment point x).
    pub mean_x: f64,
    /// Mean y coordinate (deployment point y).
    pub mean_y: f64,
    /// Per-axis standard deviation σ (> 0).
    pub sigma: f64,
}

impl IsotropicGaussian2d {
    /// Creates the distribution; panics when `sigma` is not strictly positive.
    pub fn new(mean_x: f64, mean_y: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        Self {
            mean_x,
            mean_y,
            sigma,
        }
    }

    /// Probability density at `(x, y)`.
    pub fn pdf(&self, x: f64, y: f64) -> f64 {
        let dx = x - self.mean_x;
        let dy = y - self.mean_y;
        let s2 = self.sigma * self.sigma;
        (-(dx * dx + dy * dy) / (2.0 * s2)).exp() / (2.0 * std::f64::consts::PI * s2)
    }

    /// Probability that a sample falls inside the axis-aligned rectangle
    /// `[x0, x1] × [y0, y1]` (product of the two 1-D probabilities).
    pub fn prob_in_rect(&self, x0: f64, x1: f64, y0: f64, y1: f64) -> f64 {
        let gx = Gaussian1d::new(self.mean_x, self.sigma);
        let gy = Gaussian1d::new(self.mean_y, self.sigma);
        (gx.cdf(x1) - gx.cdf(x0)).max(0.0) * (gy.cdf(y1) - gy.cdf(y0)).max(0.0)
    }

    /// Probability that a sample lands within distance `r` of the mean.
    ///
    /// The radial distance of an isotropic Gaussian is Rayleigh(σ), so this is
    /// the Rayleigh CDF `1 − exp(−r²/(2σ²))` — the closed form the paper uses
    /// for the first term of Theorem 1.
    pub fn prob_within_radius(&self, r: f64) -> f64 {
        if r <= 0.0 {
            return 0.0;
        }
        1.0 - (-(r * r) / (2.0 * self.sigma * self.sigma)).exp()
    }

    /// Draws a sample `(x, y)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        let gx = Gaussian1d::new(self.mean_x, self.sigma);
        let gy = Gaussian1d::new(self.mean_y, self.sigma);
        (gx.sample(rng), gy.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::simpson;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    #[should_panic]
    fn zero_sigma_panics() {
        let _ = Gaussian1d::new(0.0, 0.0);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let g = Gaussian1d::new(3.0, 2.0);
        let integral = simpson(|x| g.pdf(x), -20.0, 26.0, 4096);
        assert!((integral - 1.0).abs() < 1e-8);
    }

    #[test]
    fn cdf_endpoints() {
        let g = Gaussian1d::new(0.0, 1.0);
        assert!(g.cdf(-10.0) < 1e-9);
        assert!(g.cdf(10.0) > 1.0 - 1e-9);
        assert!((g.cdf(0.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pdf_2d_matches_paper_example_peak() {
        // Figure 2 of the paper: sigma = 50, peak value 1/(2*pi*50^2) ≈ 6.37e-5.
        let g = IsotropicGaussian2d::new(150.0, 150.0, 50.0);
        let peak = g.pdf(150.0, 150.0);
        assert!((peak - 1.0 / (2.0 * std::f64::consts::PI * 2500.0)).abs() < 1e-12);
        assert!(peak < 7e-5 && peak > 6e-5);
    }

    #[test]
    fn prob_within_radius_is_rayleigh_cdf() {
        let g = IsotropicGaussian2d::new(0.0, 0.0, 50.0);
        assert_eq!(g.prob_within_radius(0.0), 0.0);
        assert!((g.prob_within_radius(50.0) - (1.0 - (-0.5f64).exp())).abs() < 1e-12);
        assert!(g.prob_within_radius(1e4) > 1.0 - 1e-12);
    }

    #[test]
    fn prob_in_rect_full_plane_is_one() {
        let g = IsotropicGaussian2d::new(10.0, -5.0, 3.0);
        let p = g.prob_in_rect(-1e3, 1e3, -1e3, 1e3);
        assert!((p - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sampling_matches_prob_within_radius() {
        let g = IsotropicGaussian2d::new(100.0, 100.0, 50.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 40_000;
        let r = 60.0;
        let mut inside = 0usize;
        for _ in 0..n {
            let (x, y) = g.sample(&mut rng);
            if ((x - 100.0).powi(2) + (y - 100.0).powi(2)).sqrt() <= r {
                inside += 1;
            }
        }
        let frac = inside as f64 / n as f64;
        assert!((frac - g.prob_within_radius(r)).abs() < 0.01, "frac {frac}");
    }

    proptest! {
        #[test]
        fn prop_pdf_positive_and_bounded(x in -1e3f64..1e3, y in -1e3f64..1e3, s in 1.0f64..200.0) {
            let g = IsotropicGaussian2d::new(0.0, 0.0, s);
            let p = g.pdf(x, y);
            prop_assert!(p >= 0.0);
            prop_assert!(p <= g.pdf(0.0, 0.0) + 1e-15);
        }

        #[test]
        fn prop_prob_within_radius_monotone(s in 1.0f64..200.0, r1 in 0.0f64..500.0, r2 in 0.0f64..500.0) {
            let g = IsotropicGaussian2d::new(0.0, 0.0, s);
            let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
            prop_assert!(g.prob_within_radius(lo) <= g.prob_within_radius(hi) + 1e-12);
        }
    }
}
