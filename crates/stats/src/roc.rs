//! Receiver Operating Characteristic (ROC) curves.
//!
//! The evaluation of the LAD paper (§7.4–7.5, Figures 4–6) is phrased in
//! terms of ROC curves: detection rate (DR) versus false-positive rate (FP)
//! obtained by sweeping the detection threshold. This module builds those
//! curves from two score samples:
//!
//! * `normal_scores` — metric values measured on clean (non-attacked) nodes,
//! * `anomaly_scores` — metric values measured on attacked nodes,
//!
//! under the convention that *larger scores are more anomalous* and an alarm
//! is raised when `score > threshold`. (Metrics with the opposite convention,
//! such as the probability metric, are negated by the caller.)

use serde::{Deserialize, Serialize};

/// One operating point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Detection threshold producing this point (alarm when score > threshold).
    pub threshold: f64,
    /// False-positive rate: fraction of normal scores above the threshold.
    pub false_positive_rate: f64,
    /// Detection rate (true-positive rate): fraction of anomaly scores above
    /// the threshold.
    pub detection_rate: f64,
}

/// A ROC curve built from empirical normal / anomaly score samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    points: Vec<RocPoint>,
}

impl RocCurve {
    /// Builds the curve by sweeping the threshold across every distinct score.
    ///
    /// Both slices must be non-empty. The resulting points are sorted by
    /// increasing false-positive rate (ties broken by detection rate), and
    /// always include the trivial `(0, ·)` and `(1, 1)` endpoints.
    pub fn from_scores(normal_scores: &[f64], anomaly_scores: &[f64]) -> Self {
        assert!(!normal_scores.is_empty(), "need at least one normal score");
        assert!(
            !anomaly_scores.is_empty(),
            "need at least one anomaly score"
        );

        let mut normal: Vec<f64> = normal_scores.to_vec();
        let mut anomaly: Vec<f64> = anomaly_scores.to_vec();
        normal.sort_by(|a, b| a.partial_cmp(b).expect("NaN score"));
        anomaly.sort_by(|a, b| a.partial_cmp(b).expect("NaN score"));

        // Candidate thresholds: every distinct score plus sentinels at the ends.
        let mut thresholds: Vec<f64> = normal.iter().chain(anomaly.iter()).copied().collect();
        thresholds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        thresholds.dedup();

        let count_above = |sorted: &[f64], thr: f64| -> usize {
            // Number of elements strictly greater than thr.
            sorted.len() - sorted.partition_point(|&v| v <= thr)
        };

        let n_n = normal.len() as f64;
        let n_a = anomaly.len() as f64;
        let mut points = Vec::with_capacity(thresholds.len() + 2);
        // Threshold below every score: everything alarms.
        let below_all = thresholds.first().copied().unwrap_or(0.0) - 1.0;
        points.push(RocPoint {
            threshold: below_all,
            false_positive_rate: 1.0,
            detection_rate: 1.0,
        });
        for &thr in &thresholds {
            points.push(RocPoint {
                threshold: thr,
                false_positive_rate: count_above(&normal, thr) as f64 / n_n,
                detection_rate: count_above(&anomaly, thr) as f64 / n_a,
            });
        }
        points.sort_by(|a, b| {
            a.false_positive_rate
                .partial_cmp(&b.false_positive_rate)
                .unwrap()
                .then(a.detection_rate.partial_cmp(&b.detection_rate).unwrap())
        });
        Self { points }
    }

    /// Builds a curve directly from pre-computed operating points (used by
    /// the streaming-accumulator layer in [`crate::streaming`], whose points
    /// come from binned counts rather than raw score vectors).
    ///
    /// The points are sorted by increasing false-positive rate (ties broken
    /// by detection rate); consecutive duplicates of the same `(fp, dr)`
    /// operating point are collapsed to the one with the largest threshold.
    pub fn from_points(mut points: Vec<RocPoint>) -> Self {
        assert!(!points.is_empty(), "a ROC curve needs at least one point");
        points.sort_by(|a, b| {
            a.false_positive_rate
                .partial_cmp(&b.false_positive_rate)
                .expect("NaN false-positive rate")
                .then(
                    a.detection_rate
                        .partial_cmp(&b.detection_rate)
                        .expect("NaN detection rate"),
                )
                .then(
                    a.threshold
                        .partial_cmp(&b.threshold)
                        .expect("NaN threshold"),
                )
        });
        points.dedup_by(|next, kept| {
            let same = next.false_positive_rate == kept.false_positive_rate
                && next.detection_rate == kept.detection_rate;
            if same {
                kept.threshold = kept.threshold.max(next.threshold);
            }
            same
        });
        Self { points }
    }

    /// The operating points, ordered by increasing false-positive rate.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Area under the curve via trapezoidal integration over FP.
    pub fn auc(&self) -> f64 {
        let mut area = 0.0;
        for w in self.points.windows(2) {
            let (a, b) = (w[0], w[1]);
            area += (b.false_positive_rate - a.false_positive_rate)
                * 0.5
                * (a.detection_rate + b.detection_rate);
        }
        area.clamp(0.0, 1.0)
    }

    /// The best achievable detection rate subject to a false-positive budget
    /// `max_fp` (e.g. the paper's FP = 1 % operating point for Figures 7–9).
    /// Returns 0 when no operating point satisfies the budget.
    pub fn detection_rate_at_fp(&self, max_fp: f64) -> f64 {
        self.points
            .iter()
            .filter(|p| p.false_positive_rate <= max_fp + 1e-12)
            .map(|p| p.detection_rate)
            .fold(0.0, f64::max)
    }

    /// The threshold achieving [`Self::detection_rate_at_fp`] for the given
    /// budget, or `None` when no point qualifies.
    pub fn threshold_at_fp(&self, max_fp: f64) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.false_positive_rate <= max_fp + 1e-12)
            .max_by(|a, b| a.detection_rate.partial_cmp(&b.detection_rate).unwrap())
            .map(|p| p.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfectly_separable_scores_give_auc_one() {
        let normal = [1.0, 2.0, 3.0];
        let anomaly = [10.0, 11.0, 12.0];
        let roc = RocCurve::from_scores(&normal, &anomaly);
        assert!((roc.auc() - 1.0).abs() < 1e-9);
        assert_eq!(roc.detection_rate_at_fp(0.0), 1.0);
        let thr = roc.threshold_at_fp(0.0).unwrap();
        assert!((3.0..10.0).contains(&thr));
    }

    #[test]
    fn identical_distributions_give_auc_half() {
        let scores: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let roc = RocCurve::from_scores(&scores, &scores);
        assert!((roc.auc() - 0.5).abs() < 0.02);
    }

    #[test]
    fn inverted_scores_give_low_auc() {
        let normal = [10.0, 11.0, 12.0];
        let anomaly = [1.0, 2.0, 3.0];
        let roc = RocCurve::from_scores(&normal, &anomaly);
        assert!(roc.auc() < 0.1);
        assert_eq!(roc.detection_rate_at_fp(0.0), 0.0);
    }

    #[test]
    fn endpoints_are_present() {
        let roc = RocCurve::from_scores(&[0.0, 1.0], &[0.5, 2.0]);
        let pts = roc.points();
        assert!((pts[0].false_positive_rate - 0.0).abs() < 1e-12);
        let last = pts.last().unwrap();
        assert_eq!(last.false_positive_rate, 1.0);
        assert_eq!(last.detection_rate, 1.0);
    }

    #[test]
    fn detection_rate_at_fp_is_monotone_in_budget() {
        let normal: Vec<f64> = (0..200).map(|i| (i % 37) as f64).collect();
        let anomaly: Vec<f64> = (0..200).map(|i| (i % 53) as f64 + 10.0).collect();
        let roc = RocCurve::from_scores(&normal, &anomaly);
        let mut prev = 0.0;
        for fp in [0.0, 0.01, 0.05, 0.1, 0.5, 1.0] {
            let dr = roc.detection_rate_at_fp(fp);
            assert!(dr >= prev - 1e-12);
            prev = dr;
        }
    }

    #[test]
    #[should_panic]
    fn empty_normal_scores_panic() {
        let _ = RocCurve::from_scores(&[], &[1.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_auc_in_unit_interval(
            normal in proptest::collection::vec(-100.0f64..100.0, 1..100),
            anomaly in proptest::collection::vec(-100.0f64..100.0, 1..100),
        ) {
            let roc = RocCurve::from_scores(&normal, &anomaly);
            let auc = roc.auc();
            prop_assert!((0.0..=1.0).contains(&auc));
        }

        #[test]
        fn prop_rates_are_valid_probabilities(
            normal in proptest::collection::vec(-100.0f64..100.0, 1..60),
            anomaly in proptest::collection::vec(-100.0f64..100.0, 1..60),
        ) {
            let roc = RocCurve::from_scores(&normal, &anomaly);
            for p in roc.points() {
                prop_assert!((0.0..=1.0).contains(&p.false_positive_rate));
                prop_assert!((0.0..=1.0).contains(&p.detection_rate));
            }
        }
    }
}
