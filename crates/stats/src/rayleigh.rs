//! The Rayleigh distribution — the radial distance of an isotropic 2-D
//! Gaussian from its mean.
//!
//! The paper's Theorem 1 decomposes `g(z)` into a closed-form Rayleigh CDF
//! term plus an integral over the Rayleigh-weighted arc; this module provides
//! the pdf/cdf/quantile/sampling used by both the exact quadrature and the
//! Monte-Carlo validation tests.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Rayleigh distribution with scale σ (the σ of the underlying 2-D Gaussian).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rayleigh {
    /// Scale parameter σ (> 0).
    pub sigma: f64,
}

impl Rayleigh {
    /// Creates the distribution; panics when `sigma` is not strictly positive.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        Self { sigma }
    }

    /// Probability density at `r` (0 for negative `r`).
    pub fn pdf(&self, r: f64) -> f64 {
        if r < 0.0 {
            return 0.0;
        }
        let s2 = self.sigma * self.sigma;
        (r / s2) * (-(r * r) / (2.0 * s2)).exp()
    }

    /// Cumulative distribution at `r`.
    pub fn cdf(&self, r: f64) -> f64 {
        if r <= 0.0 {
            return 0.0;
        }
        1.0 - (-(r * r) / (2.0 * self.sigma * self.sigma)).exp()
    }

    /// Quantile (inverse CDF) for probability `p ∈ [0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
        self.sigma * (-2.0 * (1.0 - p).ln()).sqrt()
    }

    /// Mean `σ√(π/2)`.
    pub fn mean(&self) -> f64 {
        self.sigma * (std::f64::consts::PI / 2.0).sqrt()
    }

    /// Variance `(2 − π/2)σ²`.
    pub fn variance(&self) -> f64 {
        (2.0 - std::f64::consts::PI / 2.0) * self.sigma * self.sigma
    }

    /// Draws a sample via inverse-transform sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>().min(1.0 - f64::EPSILON);
        self.quantile(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::simpson;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pdf_integrates_to_cdf() {
        let d = Rayleigh::new(50.0);
        for &r in &[10.0, 50.0, 120.0, 300.0] {
            let integral = simpson(|x| d.pdf(x), 0.0, r, 2048);
            assert!((integral - d.cdf(r)).abs() < 1e-8, "r = {r}");
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Rayleigh::new(12.5);
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.999] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-10);
        }
    }

    #[test]
    fn moments_match_monte_carlo() {
        let d = Rayleigh::new(50.0);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let n = 60_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - d.mean()).abs() < 1.0, "mean {mean} vs {}", d.mean());
        assert!(
            (var - d.variance()).abs() < 30.0,
            "var {var} vs {}",
            d.variance()
        );
    }

    #[test]
    fn negative_support_is_zero() {
        let d = Rayleigh::new(1.0);
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.cdf(0.0), 0.0);
    }

    proptest! {
        #[test]
        fn prop_cdf_monotone_in_r(s in 0.5f64..200.0, a in 0.0f64..600.0, b in 0.0f64..600.0) {
            let d = Rayleigh::new(s);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(d.cdf(lo) <= d.cdf(hi) + 1e-12);
        }

        #[test]
        fn prop_samples_nonnegative(s in 0.5f64..200.0, seed in 0u64..1000) {
            let d = Rayleigh::new(s);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for _ in 0..32 {
                prop_assert!(d.sample(&mut rng) >= 0.0);
            }
        }
    }
}
