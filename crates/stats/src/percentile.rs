//! Percentiles / quantiles of empirical samples.
//!
//! LAD's detection thresholds are τ-percentiles of the metric values observed
//! on clean training deployments (§5.5): "the τ percent of the training
//! results should be within this selected threshold".

/// Returns the `q`-quantile (`q ∈ [0, 1]`) of `samples` using linear
/// interpolation between order statistics (the common "type 7" estimator).
///
/// Returns `None` when `samples` is empty. The input does not need to be
/// sorted; a sorted copy is made internally.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile fraction must be in [0, 1]"
    );
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    Some(quantile_sorted(&sorted, q))
}

/// Like [`quantile`] but assumes `sorted` is already ascending (no copy).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile fraction must be in [0, 1]"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Convenience wrapper: the τ-percentile threshold used by LAD training.
/// `tau` is expressed as a fraction (e.g. `0.99` for the 99th percentile).
pub fn tau_threshold(samples: &[f64], tau: f64) -> Option<f64> {
    quantile(samples, tau)
}

/// Returns the fraction of `samples` that are strictly greater than
/// `threshold` — the empirical false-positive rate of a "greater than
/// threshold ⇒ alarm" detector evaluated on clean data.
pub fn exceedance_fraction(samples: &[f64], threshold: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&v| v > threshold).count() as f64 / samples.len() as f64
}

/// The smallest observed value `t` such that at most a `rate` fraction of
/// `samples` are strictly greater than `t` — the budget-calibration
/// primitive: with a "value > t ⇒ act" rule, at most `rate` of the clean
/// population triggers the action.
///
/// Always feasible (no sample exceeds the maximum, so the maximum bounds any
/// rate); returns `None` only for an empty input.
///
/// # Panics
/// Panics when `rate ∉ [0, 1)` or a sample is NaN.
pub fn exceedance_threshold(samples: &[f64], rate: f64) -> Option<f64> {
    assert!(
        (0.0..1.0).contains(&rate),
        "exceedance rate must be in [0, 1), got {rate}"
    );
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in exceedance_threshold input"));
    // At most `allowed` samples may sit strictly above the returned value;
    // the candidate is the order statistic just below that tail. Ties only
    // help (equal values do not exceed), so the bound holds exactly.
    let allowed = (rate * sorted.len() as f64).floor() as usize;
    Some(sorted[sorted.len() - 1 - allowed])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input_returns_none() {
        assert!(quantile(&[], 0.5).is_none());
        assert!(tau_threshold(&[], 0.99).is_none());
        assert_eq!(exceedance_fraction(&[], 1.0), 0.0);
    }

    #[test]
    fn single_element_is_every_quantile() {
        let s = [42.0];
        for &q in &[0.0, 0.25, 0.5, 1.0] {
            assert_eq!(quantile(&s, q), Some(42.0));
        }
    }

    #[test]
    fn median_and_extremes() {
        let s = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&s, 0.5), Some(3.0));
        assert_eq!(quantile(&s, 0.0), Some(1.0));
        assert_eq!(quantile(&s, 1.0), Some(5.0));
    }

    #[test]
    fn interpolation_between_order_statistics() {
        let s = [10.0, 20.0];
        assert_eq!(quantile(&s, 0.5), Some(15.0));
        assert_eq!(quantile(&s, 0.25), Some(12.5));
    }

    #[test]
    fn exceedance_matches_threshold_semantics() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(exceedance_fraction(&s, 3.0), 0.4);
        assert_eq!(exceedance_fraction(&s, 0.0), 1.0);
        assert_eq!(exceedance_fraction(&s, 5.0), 0.0);
    }

    #[test]
    fn tau_threshold_controls_training_fp() {
        // With the threshold at the tau percentile, at most (1 - tau) of the
        // training samples exceed it — the paper's training-set FP bound.
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let tau = 0.99;
        let thr = tau_threshold(&samples, tau).unwrap();
        assert!(exceedance_fraction(&samples, thr) <= 1.0 - tau + 1e-9);
    }

    #[test]
    fn exceedance_threshold_bounds_the_acting_fraction() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        // rate 0: nothing may exceed -> the maximum.
        assert_eq!(exceedance_threshold(&s, 0.0), Some(5.0));
        // rate 0.2: exactly one sample may exceed.
        assert_eq!(exceedance_threshold(&s, 0.2), Some(4.0));
        assert_eq!(exceedance_threshold(&s, 0.5), Some(3.0));
        assert!(exceedance_threshold(&[], 0.1).is_none());
        // Ties do not exceed: a run of equal maxima still satisfies rate 0.
        let tied = [1.0, 7.0, 7.0, 7.0];
        assert_eq!(exceedance_threshold(&tied, 0.0), Some(7.0));
        assert_eq!(exceedance_fraction(&tied, 7.0), 0.0);
    }

    proptest! {
        #[test]
        fn prop_exceedance_threshold_honours_rate(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..200),
            rate in 0.0f64..0.99,
        ) {
            let t = exceedance_threshold(&xs, rate).unwrap();
            prop_assert!(exceedance_fraction(&xs, t) <= rate + 1e-12);
            // And it is one of the samples (the smallest feasible one).
            prop_assert!(xs.contains(&t));
        }
    }

    proptest! {
        #[test]
        fn prop_quantile_within_range(mut xs in proptest::collection::vec(-1e3f64..1e3, 1..200), q in 0.0f64..1.0) {
            let v = quantile(&xs, q).unwrap();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(v >= xs[0] - 1e-9 && v <= xs[xs.len() - 1] + 1e-9);
        }

        #[test]
        fn prop_quantile_monotone_in_q(xs in proptest::collection::vec(-1e3f64..1e3, 1..200), a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(quantile(&xs, lo).unwrap() <= quantile(&xs, hi).unwrap() + 1e-9);
        }

        #[test]
        fn prop_exceedance_bounded_by_tau(xs in proptest::collection::vec(-1e3f64..1e3, 2..300), tau in 0.5f64..1.0) {
            let thr = tau_threshold(&xs, tau).unwrap();
            // Allow for ties/interpolation: exceedance can only be smaller or
            // marginally above (1 - tau) due to discreteness of the sample.
            let slack = 1.0 / xs.len() as f64 + 1e-9;
            prop_assert!(exceedance_fraction(&xs, thr) <= 1.0 - tau + slack);
        }
    }
}
